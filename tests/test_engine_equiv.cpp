/**
 * @file
 * Scheduler equivalence suite: the indexed-heap fast scheduler vs. the
 * retained linear-scan reference scheduler.
 *
 * The engine contract is that the fast path changes *host* cost only:
 * same deterministic argmin with lowest-id tie-break, same RNG
 * consumption under perturbation, same watchdog semantics. So for every
 * workload and scheduling regime — strict, seed-perturbed, and
 * fault-injected — the two schedulers must produce byte-identical
 * results, identical final cycle counts, and identical context-switch
 * counts, with the concurrency checker armed and reporting zero
 * violations on both. Any drift here means the fast scheduler is not a
 * pure optimization and invalidates every recorded experiment.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "runtime/ws_runtime.hpp"
#include "sim/checker.hpp"
#include "sim/fault.hpp"
#include "workloads/cilksort.hpp"
#include "workloads/fib.hpp"
#include "workloads/nqueens.hpp"
#include "workloads/uts.hpp"

namespace spmrt {
namespace {

using namespace spmrt::workloads;

constexpr Cycles kWindow = 8; ///< perturbation admission window

/** Scheduling regime of one equivalence run. */
struct Regime
{
    const char *name;
    bool perturb = false;
    uint64_t schedSeed = 0;
    bool fault = false;
    uint64_t faultSeed = 0;
};

std::vector<Regime>
makeRegimes()
{
    std::vector<Regime> regimes;
    regimes.push_back({"strict", false, 0, false, 0});
    for (uint64_t seed = 1; seed <= 4; ++seed)
        regimes.push_back({"perturbed", true, seed, false, 0});
    regimes.push_back({"faulted", false, 0, true, 5});
    regimes.push_back({"perturbed+faulted", true, 2, true, 9});
    return regimes;
}

/** Everything the two schedulers must agree on. */
struct Outcome
{
    uint64_t digest = 0;
    Cycles cycles = 0;
    uint64_t switches = 0;
    uint64_t syncPoints = 0;
    uint64_t compiledTraversals = 0;
    uint64_t walkedTraversals = 0;
    size_t violations = 0;
    std::string report;
};

/** FNV-1a over a result vector, so array outputs digest to one word. */
template <typename T>
uint64_t
fnvDigest(const std::vector<T> &values)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const T &v : values) {
        h ^= static_cast<uint64_t>(v);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** One workload: reference digest + a run returning digest. */
struct Workload
{
    const char *name;
    uint64_t reference;
    std::function<uint64_t(Machine &, WorkStealingRuntime &)> run;
};

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> w;

    w.push_back({"fib", static_cast<uint64_t>(fibReference(12)),
                 [](Machine &machine, WorkStealingRuntime &rt) {
                     Addr out = machine.dramAlloc(8, 8);
                     rt.run([&](TaskContext &tc) { fibKernel(tc, 12, out); });
                     return static_cast<uint64_t>(
                         machine.mem().peekAs<int64_t>(out));
                 }});

    {
        constexpr uint32_t kN = 400;
        constexpr uint64_t kDataSeed = 900;
        Machine ref_machine(MachineConfig::tiny());
        CilkSortData ref = cilksortSetup(ref_machine, kN, kDataSeed);
        std::vector<uint32_t> sorted =
            downloadArray<uint32_t>(ref_machine, ref.data, kN);
        std::sort(sorted.begin(), sorted.end());
        w.push_back({"cilksort", fnvDigest(sorted),
                     [](Machine &machine, WorkStealingRuntime &rt) {
                         CilkSortData data =
                             cilksortSetup(machine, kN, kDataSeed);
                         rt.run([&](TaskContext &tc) {
                             cilksortKernel(tc, data);
                         });
                         return fnvDigest(downloadArray<uint32_t>(
                             machine, data.data, kN));
                     }});
    }

    {
        UtsParams params = UtsParams::geometric(7, 2.2, 42);
        w.push_back({"uts", utsReference(params),
                     [params](Machine &machine, WorkStealingRuntime &rt) {
                         UtsData data = utsSetup(machine, params);
                         rt.run([&](TaskContext &tc) {
                             utsKernel(tc, data);
                         });
                         return utsResult(machine, data);
                     }});
    }

    w.push_back({"nqueens", nqueensReference(6),
                 [](Machine &machine, WorkStealingRuntime &rt) {
                     NQueensData data = nqueensSetup(machine, 6);
                     rt.run([&](TaskContext &tc) {
                         nqueensKernel(tc, data);
                     });
                     return nqueensResult(machine, data);
                 }});

    return w;
}

/**
 * Run @p workload once under @p regime on the chosen scheduler, on an
 * arbitrary machine geometry. @p compiled_routes additionally toggles
 * the NoC's compiled route tables, so the memory fast paths can be
 * crossed against the uncached per-hop reference walk.
 */
Outcome
runOnceOn(const MachineConfig &cfg, const Workload &workload,
          const Regime &regime, bool reference, bool compiled_routes = true,
          uint32_t shards = 1, SchedMode mode = SchedMode::Token,
          bool rebalance = false)
{
    Machine machine(cfg);
    machine.engine().setScheduler(reference ? SchedMode::Reference : mode);
    machine.engine().setShards(shards);
    if (rebalance) {
        // Profile-driven boundary re-planning with a deliberately skewed
        // primed profile: any contiguous plan must be result-equivalent.
        machine.engine().setShardRebalance(true);
        std::vector<uint64_t> profile(cfg.numCores());
        for (uint32_t i = 0; i < cfg.numCores(); ++i)
            profile[i] = 1 + (i * 7) % 13;
        machine.engine().primeShardProfile(std::move(profile));
    }
    machine.mem().noc().setCompiledRoutes(compiled_routes);
    ConcurrencyChecker *ck = machine.armChecker();
    if (regime.perturb)
        machine.engine().perturbSchedule(regime.schedSeed, kWindow);
    FaultPlan plan;
    if (regime.fault) {
        plan = FaultPlan::chaos(regime.faultSeed, machine.config());
        machine.setFaultPlan(&plan);
    }

    Outcome out;
    Cycles start = machine.engine().maxTime();
    uint64_t switches0 = machine.engine().switchCount();
    uint64_t syncs0 = machine.engine().syncPointCount();
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    out.digest = workload.run(machine, rt);
    out.cycles = machine.engine().maxTime() - start;
    out.switches = machine.engine().switchCount() - switches0;
    out.syncPoints = machine.engine().syncPointCount() - syncs0;
    out.compiledTraversals = machine.mem().noc().compiledTraversals();
    out.walkedTraversals = machine.mem().noc().walkedTraversals();
    machine.setFaultPlan(nullptr);
    if (ck != nullptr) {
        out.violations = ck->violations().size();
        out.report = ck->report();
    }
    return out;
}

/** The historical single-geometry entry point: runs on tiny(). */
Outcome
runOnce(const Workload &workload, const Regime &regime, bool reference,
        bool compiled_routes = true, uint32_t shards = 1,
        SchedMode mode = SchedMode::Token)
{
    return runOnceOn(MachineConfig::tiny(), workload, regime, reference,
                     compiled_routes, shards, mode);
}

class SchedulerEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SchedulerEquivalence, FastMatchesReferenceBitForBit)
{
    const Workload workload = makeWorkloads()[GetParam()];
    SCOPED_TRACE(workload.name);

    for (const Regime &regime : makeRegimes()) {
        SCOPED_TRACE(regime.name);
        Outcome fast = runOnce(workload, regime, false);
        Outcome oracle = runOnce(workload, regime, true);

        EXPECT_EQ(fast.digest, workload.reference)
            << regime.name << ": fast scheduler computed a wrong result";
        EXPECT_EQ(fast.digest, oracle.digest)
            << regime.name << ": result diverged between schedulers";
        EXPECT_EQ(fast.cycles, oracle.cycles)
            << regime.name << ": simulated cycle counts diverged";
        EXPECT_EQ(fast.switches, oracle.switches)
            << regime.name << ": context-switch counts diverged";
        EXPECT_EQ(fast.syncPoints, oracle.syncPoints)
            << regime.name << ": syncPoint counts diverged";
#if SPMRT_CHECKER_ENABLED
        EXPECT_EQ(fast.violations, 0u)
            << regime.name << " (fast):\n" << fast.report;
        EXPECT_EQ(oracle.violations, 0u)
            << regime.name << " (reference):\n" << oracle.report;
#endif
    }
}

std::string
workloadName(const ::testing::TestParamInfo<size_t> &info)
{
    static const char *const names[] = {"fib", "cilksort", "uts", "nqueens"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SchedulerEquivalence,
                         ::testing::Range<size_t>(0, 4), workloadName);

// ---- Host-parallel engine vs. the sequential fast engine -----------------

/**
 * The sharded engine's contract is the same as the fast scheduler's:
 * host cost may change, simulation must not. For every workload, shard
 * count, and scheduling regime — strict, four perturbation seeds, and
 * fault-injected — a parallel run must produce byte-identical digests,
 * cycle counts, and switch/syncPoint counts against the sequential fast
 * engine, with the concurrency checker armed and silent on both sides.
 * One shard must take the sequential path exactly (it *is* the baseline
 * by construction, but the run is kept in the matrix so a regression
 * that accidentally engages the token machinery at one shard fails
 * loudly).
 */
class ParallelEngineEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ParallelEngineEquivalence, ShardedMatchesSequentialBitForBit)
{
    const Workload workload = makeWorkloads()[GetParam()];
    SCOPED_TRACE(workload.name);

    std::vector<Regime> regimes;
    regimes.push_back({"strict", false, 0, false, 0});
    for (uint64_t seed = 1; seed <= 4; ++seed)
        regimes.push_back({"perturbed", true, seed, false, 0});
    regimes.push_back({"faulted", false, 0, true, 5});

    for (const Regime &regime : regimes) {
        SCOPED_TRACE(regime.name);
        Outcome sequential = runOnce(workload, regime, false);
        EXPECT_EQ(sequential.digest, workload.reference);

        for (uint32_t shards : {1u, 2u, 4u, 8u}) {
            SCOPED_TRACE(std::to_string(shards) + " shards");
            Outcome sharded =
                runOnce(workload, regime, false, true, shards);
            EXPECT_EQ(sharded.digest, sequential.digest)
                << "result diverged under " << shards << " shards";
            EXPECT_EQ(sharded.cycles, sequential.cycles)
                << "cycle counts diverged under " << shards << " shards";
            EXPECT_EQ(sharded.switches, sequential.switches)
                << "switch counts diverged under " << shards << " shards";
            EXPECT_EQ(sharded.syncPoints, sequential.syncPoints)
                << "syncPoint counts diverged under " << shards
                << " shards";
#if SPMRT_CHECKER_ENABLED
            EXPECT_EQ(sharded.violations, 0u)
                << shards << " shards:\n" << sharded.report;
#endif
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParallelEngineEquivalence,
                         ::testing::Range<size_t>(0, 4), workloadName);

// ---- Windowed concurrent engine vs. the sequential fast engine -----------

/**
 * The windowed engine removes the grant token: shard threads run
 * concurrently below a conservative horizon and synchronize at window
 * barriers, where the coordinator replays per-shard record logs through
 * a model of the sequential scheduler. The contract is unchanged: for
 * every workload, shard count, and regime the digests, cycle counts, and
 * switch/syncPoint counts must be byte-identical to the sequential fast
 * engine with the checker armed and silent. Under schedule perturbation
 * the windowed mode falls back to token passing (the perturbation RNG is
 * one global stream), which must *also* match — the fallback is part of
 * the contract, so the perturbed regime stays in this matrix.
 */
class WindowedEngineEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(WindowedEngineEquivalence, WindowedMatchesSequentialBitForBit)
{
    const Workload workload = makeWorkloads()[GetParam()];
    SCOPED_TRACE(workload.name);

    std::vector<Regime> regimes;
    regimes.push_back({"strict", false, 0, false, 0});
    regimes.push_back({"perturbed", true, 2, false, 0});
    regimes.push_back({"faulted", false, 0, true, 5});

    for (const Regime &regime : regimes) {
        SCOPED_TRACE(regime.name);
        Outcome sequential = runOnce(workload, regime, false);
        EXPECT_EQ(sequential.digest, workload.reference);

        for (uint32_t shards : {1u, 2u, 4u, 8u}) {
            SCOPED_TRACE(std::to_string(shards) + " shards");
            Outcome windowed = runOnce(workload, regime, false, true,
                                       shards, SchedMode::Windowed);
            EXPECT_EQ(windowed.digest, sequential.digest)
                << "result diverged under " << shards << " shards";
            EXPECT_EQ(windowed.cycles, sequential.cycles)
                << "cycle counts diverged under " << shards << " shards";
            EXPECT_EQ(windowed.switches, sequential.switches)
                << "switch counts diverged under " << shards << " shards";
            EXPECT_EQ(windowed.syncPoints, sequential.syncPoints)
                << "syncPoint counts diverged under " << shards
                << " shards";
#if SPMRT_CHECKER_ENABLED
            EXPECT_EQ(windowed.violations, 0u)
                << shards << " shards:\n" << windowed.report;
#endif
        }

        // Rebalanced leg: a skewed primed profile moves the shard
        // boundaries, which must not move a single byte of the result.
        {
            SCOPED_TRACE("4 shards, rebalanced");
            Outcome rebalanced =
                runOnceOn(MachineConfig::tiny(), workload, regime, false,
                          true, 4, SchedMode::Windowed, true);
            EXPECT_EQ(rebalanced.digest, sequential.digest)
                << "result diverged under a rebalanced plan";
            EXPECT_EQ(rebalanced.cycles, sequential.cycles)
                << "cycle counts diverged under a rebalanced plan";
            EXPECT_EQ(rebalanced.switches, sequential.switches);
            EXPECT_EQ(rebalanced.syncPoints, sequential.syncPoints);
#if SPMRT_CHECKER_ENABLED
            EXPECT_EQ(rebalanced.violations, 0u) << rebalanced.report;
#endif
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WindowedEngineEquivalence,
                         ::testing::Range<size_t>(0, 4), workloadName);

// ---- Free machine geometry: equivalence off the paper floorplan ----------

/**
 * A machine the paper never built: Y-ruched, single-edge LLC, dual
 * DRAM channel. Nothing in the engine-equivalence contract is allowed
 * to depend on the floorplan, and the windowed engine's conservative
 * lookahead is computed from the closed-form route latency — which must
 * stay an exact lower bound under every geometry or the windowed runs
 * drift. This leg crosses both sharded engines against the sequential
 * fast engine on such a machine, checker armed.
 */
MachineConfig
offPaperConfig()
{
    MachineConfig cfg = MachineConfig::small(); // 8x4, 32 cores
    cfg.rucheY = 2;
    cfg.dramChannels = 2;
    cfg.llcPlacement = LlcPlacement::Top;
    cfg.validate();
    return cfg;
}

TEST(GeometryEquivalence, OffPaperMachineMatchesSequentialBitForBit)
{
    const MachineConfig cfg = offPaperConfig();
    const std::vector<Workload> workloads = makeWorkloads();
    const Regime regimes[] = {
        {"strict", false, 0, false, 0},
        {"faulted", false, 0, true, 5},
    };
    for (size_t wi : {size_t{0}, size_t{1}}) { // fib, cilksort
        const Workload &workload = workloads[wi];
        SCOPED_TRACE(workload.name);
        for (const Regime &regime : regimes) {
            SCOPED_TRACE(regime.name);
            Outcome sequential = runOnceOn(cfg, workload, regime, false);
            EXPECT_EQ(sequential.digest, workload.reference)
                << "sequential run computed a wrong result off-paper";

            for (uint32_t shards : {1u, 2u, 4u, 8u}) {
                SCOPED_TRACE(std::to_string(shards) + " shards");
                for (SchedMode mode :
                     {SchedMode::Token, SchedMode::Windowed}) {
                    SCOPED_TRACE(mode == SchedMode::Token ? "token"
                                                          : "windowed");
                    Outcome run = runOnceOn(cfg, workload, regime, false,
                                            true, shards, mode);
                    EXPECT_EQ(run.digest, sequential.digest)
                        << "result diverged off the paper floorplan";
                    EXPECT_EQ(run.cycles, sequential.cycles)
                        << "cycle counts diverged off the paper floorplan";
                    EXPECT_EQ(run.switches, sequential.switches);
                    EXPECT_EQ(run.syncPoints, sequential.syncPoints);
#if SPMRT_CHECKER_ENABLED
                    EXPECT_EQ(run.violations, 0u) << run.report;
#endif
                }
            }
        }
    }
}

/**
 * The scale acceptance gate: the 32x32 four-channel big1024() preset
 * must run every equivalence workload windowed byte-identical to the
 * sequential fast engine — digests, cycle counts, and switch/syncPoint
 * counts — with the checker armed. A 1024-core machine is where a
 * lookahead that is merely *approximately* a lower bound, or a route
 * table compiled for the 16x8 floorplan, actually breaks.
 */
TEST(GeometryEquivalence, Big1024WindowedMatchesSequentialFast)
{
    const MachineConfig cfg = MachineConfig::big1024();
    const Regime strict{"strict", false, 0, false, 0};
    for (const Workload &workload : makeWorkloads()) {
        SCOPED_TRACE(workload.name);
        Outcome sequential = runOnceOn(cfg, workload, strict, false);
        EXPECT_EQ(sequential.digest, workload.reference)
            << "sequential run computed a wrong result on big1024";

        Outcome windowed = runOnceOn(cfg, workload, strict, false, true, 4,
                                     SchedMode::Windowed);
        EXPECT_EQ(windowed.digest, sequential.digest)
            << "windowed result diverged on big1024";
        EXPECT_EQ(windowed.cycles, sequential.cycles)
            << "windowed cycle count diverged on big1024";
        EXPECT_EQ(windowed.switches, sequential.switches);
        EXPECT_EQ(windowed.syncPoints, sequential.syncPoints);
#if SPMRT_CHECKER_ENABLED
        EXPECT_EQ(windowed.violations, 0u) << windowed.report;
        EXPECT_EQ(sequential.violations, 0u) << sequential.report;
#endif
    }
}

// ---- Memory fast paths vs. the fully-uncached reference ------------------

/**
 * Cross the memory hot paths against their reference implementations:
 * fast scheduler + compiled route tables vs. reference scheduler +
 * uncached per-hop walk. Every digest, cycle count, and switch/syncPoint
 * count must match, with the checker armed and silent — proving the
 * local-SPM fast path, burst accounting, and route tables are pure host
 * optimizations in combination, not just individually.
 */
TEST(SchedulerEquivalence, MemoryFastPathsMatchUncachedReference)
{
    const std::vector<Workload> workloads = makeWorkloads();
    const Regime regimes[] = {
        {"strict", false, 0, false, 0},
        {"perturbed", true, 3, false, 0},
        {"faulted", false, 0, true, 7},
    };
    for (const Workload &workload : workloads) {
        SCOPED_TRACE(workload.name);
        for (const Regime &regime : regimes) {
            SCOPED_TRACE(regime.name);
            Outcome fast = runOnce(workload, regime, false, true);
            Outcome oracle = runOnce(workload, regime, true, false);

            EXPECT_EQ(fast.digest, workload.reference);
            EXPECT_EQ(fast.digest, oracle.digest);
            EXPECT_EQ(fast.cycles, oracle.cycles);
            EXPECT_EQ(fast.switches, oracle.switches);
            EXPECT_EQ(fast.syncPoints, oracle.syncPoints);
            EXPECT_EQ(oracle.compiledTraversals, 0u)
                << "reference run must not use compiled routes";
#if SPMRT_CHECKER_ENABLED
            EXPECT_EQ(fast.violations, 0u) << fast.report;
            EXPECT_EQ(oracle.violations, 0u) << oracle.report;
#endif
        }
    }
}

/**
 * The route-table fallback must provably engage whenever the fault plan
 * carries link-delay windows, and re-engage the compiled tables when it
 * does not.
 */
TEST(SchedulerEquivalence, RouteFallbackEngagesDuringFaultWindows)
{
    const Workload workload = makeWorkloads()[0]; // fib

    FaultPlan probe = FaultPlan::chaos(5, MachineConfig::tiny());
    ASSERT_TRUE(probe.hasLinkDelays())
        << "chaos seed 5 must include link-delay windows for this test";

    Outcome faulted = runOnce(workload, {"faulted", false, 0, true, 5},
                              false, true);
    EXPECT_EQ(faulted.compiledTraversals, 0u)
        << "a plan with link windows must force the per-hop walk";
    EXPECT_GT(faulted.walkedTraversals, 0u);

    Outcome strict = runOnce(workload, {"strict", false, 0, false, 0},
                             false, true);
    EXPECT_EQ(strict.walkedTraversals, 0u)
        << "without link windows every packet takes the compiled tables";
    EXPECT_GT(strict.compiledTraversals, 0u);
}

// ---- Engine-level equivalence of the primitive operations ----------------

/** Drive raw engine primitives and compare the two schedulers' traces. */
struct EngineTrace
{
    std::vector<std::pair<CoreId, Cycles>> order;
    uint64_t switches = 0;
    Cycles maxTime = 0;
};

EngineTrace
interleaveTrace(bool reference, uint64_t perturb_seed)
{
    Engine engine(4, 64 * 1024);
    engine.setReferenceScheduler(reference);
    if (perturb_seed != 0)
        engine.perturbSchedule(perturb_seed, 4);
    EngineTrace trace;
    for (CoreId i = 0; i < 4; ++i) {
        engine.setBody(i, [&engine, &trace, i] {
            for (int k = 0; k < 20; ++k) {
                engine.advance(i, 3 + (i * 7 + k) % 5);
                engine.syncPoint(i);
                trace.order.emplace_back(i, engine.time(i));
            }
        });
    }
    engine.run();
    trace.switches = engine.switchCount();
    trace.maxTime = engine.maxTime();
    return trace;
}

TEST(SchedulerEquivalence, PrimitiveInterleavingsMatch)
{
    for (uint64_t seed : {0ull, 1ull, 2ull, 3ull}) {
        EngineTrace fast = interleaveTrace(false, seed);
        EngineTrace oracle = interleaveTrace(true, seed);
        EXPECT_EQ(fast.order, oracle.order) << "seed " << seed;
        EXPECT_EQ(fast.switches, oracle.switches) << "seed " << seed;
        EXPECT_EQ(fast.maxTime, oracle.maxTime) << "seed " << seed;
    }
}

TEST(SchedulerEquivalence, BlockUnblockMatches)
{
    // Core 0 parks; core 1 advances past it and wakes it at a later time;
    // both then interleave. Exercises heap erase/insert and the cached
    // other-min fold on unblock.
    auto run = [](bool reference) {
        Engine engine(2, 64 * 1024);
        engine.setReferenceScheduler(reference);
        EngineTrace trace;
        engine.setBody(0, [&engine, &trace] {
            engine.block(0);
            for (int k = 0; k < 10; ++k) {
                engine.advance(0, 2);
                engine.syncPoint(0);
                trace.order.emplace_back(0u, engine.time(0));
            }
        });
        engine.setBody(1, [&engine, &trace] {
            for (int k = 0; k < 10; ++k) {
                engine.advance(1, 5);
                engine.syncPoint(1);
                trace.order.emplace_back(1u, engine.time(1));
            }
            engine.unblock(0, 17);
        });
        engine.run();
        trace.switches = engine.switchCount();
        trace.maxTime = engine.maxTime();
        return trace;
    };
    EngineTrace fast = run(false);
    EngineTrace oracle = run(true);
    EXPECT_EQ(fast.order, oracle.order);
    EXPECT_EQ(fast.switches, oracle.switches);
    EXPECT_EQ(fast.maxTime, oracle.maxTime);
    EXPECT_EQ(fast.maxTime, 50u);
}

TEST(SchedulerEquivalence, MaxTimeIsLiveDuringARun)
{
    // maxTime() is O(1) via the high-water mark; it must still be exact
    // when sampled from inside guest code, where the running core can be
    // ahead of every fold point.
    Engine engine(2, 64 * 1024);
    Cycles sampled = 0;
    engine.setBody(0, [&engine, &sampled] {
        engine.advance(0, 100);
        sampled = engine.maxTime();
        engine.syncPoint(0);
    });
    engine.setBody(1, [&engine] {
        engine.advance(1, 40);
        engine.syncPoint(1);
    });
    engine.run();
    EXPECT_EQ(sampled, 100u);
    EXPECT_EQ(engine.maxTime(), 100u);
}

TEST(SchedulerEquivalence, SchedulerSelectionIsExplicit)
{
    Engine engine(1, 64 * 1024);
    bool initial = engine.referenceScheduler();
    engine.setReferenceScheduler(!initial);
    EXPECT_EQ(engine.referenceScheduler(), !initial);
    engine.setReferenceScheduler(initial);
    EXPECT_EQ(engine.referenceScheduler(), initial);
}

} // namespace
} // namespace spmrt
