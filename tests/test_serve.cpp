/**
 * @file
 * Fleet-server tests: retry/backoff determinism, supervision, caching,
 * degradation, and batch-level acceptance.
 *
 * Everything here must be deterministic on any host: backoff schedules
 * are pure functions of (policy, seed, attempt); hangs are provoked by
 * construction (a waitChildren() with no child, or a straggler fault
 * plan with no watchdog margin) rather than by timing luck; and tests
 * that need a worker pinned mid-job gate it on a promise instead of
 * sleeping. Retry sleeps are disabled via RetryPolicy::sleepScale = 0.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>

#include "runtime/ws_runtime.hpp"
#include "serve/server.hpp"
#include "serve/workloads.hpp"
#include "sim/fault.hpp"
#include "workloads/cilksort.hpp"
#include "workloads/fib.hpp"

namespace spmrt {
namespace serve {
namespace {

using namespace spmrt::workloads;

/** Retry policy for tests: deterministic, and never actually sleeps. */
RetryPolicy
instantRetry(uint32_t max_attempts)
{
    RetryPolicy policy;
    policy.maxAttempts = max_attempts;
    policy.sleepScale = 0.0;
    return policy;
}

/** A root body that hangs by construction: a wait with no child. */
JobRequest
denialHangRequest(uint64_t watchdog_cycles)
{
    JobRequest req;
    req.name = "hang/denial";
    req.cacheKey = "hang/denial";
    req.runtime.watchdogCycles = watchdog_cycles;
    req.armChecker = false;
    req.prepare = [](Machine &, AssetCache &) {
        PreparedJob prep;
        prep.root = [](TaskContext &tc) {
            tc.setReadyCount(1);
            tc.waitChildren();
        };
        return prep;
    };
    return req;
}

/**
 * The acceptance hang: a straggler fault plan with no watchdog margin.
 * Core 0 is stalled 1M extra cycles per operation while the watchdog
 * allows only 60k cycles without a task retire, so the very first task
 * never completes in time — a deterministic quiescence failure.
 */
JobRequest
stragglerHangRequest()
{
    JobRequest req;
    req.name = "hang/straggler";
    req.cacheKey = "hang/straggler";
    req.runtime.watchdogCycles = 60'000;
    req.armChecker = false;
    req.prepare = [](Machine &machine, AssetCache &) {
        auto plan = std::make_shared<FaultPlan>();
        plan->stallCore(0, 0, ~0ull, 1'000'000);
        machine.setFaultPlan(plan.get());
        Addr out = machine.dramAlloc(8, 8);
        PreparedJob prep;
        prep.root = [plan, out](TaskContext &tc) {
            fibKernel(tc, 10, out);
        };
        return prep;
    };
    return req;
}

/**
 * A job whose prepare() blocks on @p gate after flagging @p started —
 * pins one worker deterministically so queue-level behaviour (shedding,
 * cancellation) can be exercised without racing the worker.
 */
JobRequest
gatedRequest(const std::string &name,
             std::shared_ptr<std::atomic<bool>> started,
             std::shared_future<void> gate)
{
    JobRequest req;
    req.name = name;
    req.armChecker = false;
    req.prepare = [started, gate](Machine &machine, AssetCache &) {
        started->store(true, std::memory_order_release);
        gate.wait();
        Addr out = machine.dramAlloc(8, 8);
        PreparedJob prep;
        prep.root = [out](TaskContext &tc) { fibKernel(tc, 5, out); };
        prep.digest = [out](Machine &m) {
            return static_cast<uint64_t>(m.mem().peekAs<int64_t>(out));
        };
        return prep;
    };
    return req;
}

void
spinUntil(const std::atomic<bool> &flag)
{
    while (!flag.load(std::memory_order_acquire))
        std::this_thread::yield();
}

// ---- Retry/backoff determinism ------------------------------------------

TEST(Backoff, DeterministicPerSeedAndAttempt)
{
    RetryPolicy policy;
    policy.backoffBaseMs = 10;
    policy.backoffMaxMs = 2000;
    policy.jitterMs = 10;
    for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
            uint32_t a = backoffDelayMs(policy, seed, attempt);
            uint32_t b = backoffDelayMs(policy, seed, attempt);
            EXPECT_EQ(a, b) << "seed " << seed << " attempt " << attempt;
        }
    }
    // Different seeds must produce different schedules somewhere —
    // otherwise the jitter is not doing its decorrelation job.
    bool differs = false;
    for (uint32_t attempt = 1; attempt <= 8 && !differs; ++attempt)
        differs = backoffDelayMs(policy, 1, attempt) !=
                  backoffDelayMs(policy, 2, attempt);
    EXPECT_TRUE(differs);
}

TEST(Backoff, ExponentialBaseWithBoundedJitter)
{
    RetryPolicy policy;
    policy.backoffBaseMs = 10;
    policy.backoffMaxMs = 100;
    policy.jitterMs = 5;
    for (uint64_t seed = 0; seed < 20; ++seed) {
        uint32_t expected_base = 10;
        for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
            uint32_t delay = backoffDelayMs(policy, seed, attempt);
            EXPECT_GE(delay, expected_base);
            EXPECT_LE(delay, expected_base + policy.jitterMs)
                << "seed " << seed << " attempt " << attempt;
            expected_base = std::min(expected_base * 2, 100u);
        }
    }
}

TEST(Backoff, JitterActuallyVaries)
{
    RetryPolicy policy;
    policy.backoffBaseMs = 10;
    policy.jitterMs = 10;
    std::set<uint32_t> delays;
    for (uint64_t seed = 0; seed < 32; ++seed)
        delays.insert(backoffDelayMs(policy, seed, 1));
    EXPECT_GT(delays.size(), 1u);
}

// ---- Error taxonomy ------------------------------------------------------

TEST(JobStatusTaxonomy, NamesAndClasses)
{
    EXPECT_STREQ(jobStatusName(JobStatus::Ok), "ok");
    EXPECT_STREQ(jobStatusName(JobStatus::CacheHit), "cache_hit");
    EXPECT_STREQ(jobStatusName(JobStatus::Hang), "hang");
    EXPECT_STREQ(jobStatusName(JobStatus::CheckerViolation),
                 "checker_violation");
    EXPECT_STREQ(jobStatusName(JobStatus::DigestMismatch),
                 "digest_mismatch");
    EXPECT_STREQ(jobStatusName(JobStatus::BudgetExceeded),
                 "budget_exceeded");
    EXPECT_STREQ(jobStatusName(JobStatus::DeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(jobStatusName(JobStatus::SetupFailure), "setup_failure");
    EXPECT_STREQ(jobStatusName(JobStatus::Shed), "shed");
    EXPECT_STREQ(jobStatusName(JobStatus::Quarantined), "quarantined");

    // Transient failures retry; deterministic ones must fail fast.
    EXPECT_TRUE(jobStatusRetryable(JobStatus::Hang));
    EXPECT_TRUE(jobStatusRetryable(JobStatus::BudgetExceeded));
    EXPECT_TRUE(jobStatusRetryable(JobStatus::DeadlineExceeded));
    EXPECT_FALSE(jobStatusRetryable(JobStatus::SetupFailure));
    EXPECT_FALSE(jobStatusRetryable(JobStatus::CheckerViolation));
    EXPECT_FALSE(jobStatusRetryable(JobStatus::DigestMismatch));

    for (JobStatus s : {JobStatus::Hang, JobStatus::CheckerViolation,
                        JobStatus::DigestMismatch,
                        JobStatus::BudgetExceeded,
                        JobStatus::DeadlineExceeded,
                        JobStatus::SetupFailure})
        EXPECT_TRUE(jobStatusIsFailure(s)) << jobStatusName(s);
    for (JobStatus s : {JobStatus::Ok, JobStatus::CacheHit, JobStatus::Shed,
                        JobStatus::Cancelled, JobStatus::Quarantined})
        EXPECT_FALSE(jobStatusIsFailure(s)) << jobStatusName(s);
}

// ---- Happy path and caching ---------------------------------------------

TEST(Fleet, SingleJobMatchesHostReference)
{
    FleetConfig cfg;
    cfg.workers = 2;
    FleetServer server(cfg);
    JobReport report = server.wait(
        server.submit(makeWorkloadRequest({"fib", 13, 0, 0.0})));
    EXPECT_EQ(report.status, JobStatus::Ok) << report.error;
    EXPECT_EQ(report.digest, static_cast<uint64_t>(fibReference(13)));
    EXPECT_EQ(report.attempts, 1u);
    EXPECT_FALSE(report.fromCache);
    EXPECT_FALSE(report.quarantined);
    EXPECT_GT(report.cycles, 0u);
}

TEST(Fleet, DuplicatesServedFromCacheByteIdentical)
{
    FleetConfig cfg;
    cfg.workers = 1;
    FleetServer server(cfg);
    JobReport first = server.wait(
        server.submit(makeWorkloadRequest({"cilksort", 300, 77, 0.0})));
    ASSERT_EQ(first.status, JobStatus::Ok) << first.error;

    JobReport dup = server.wait(
        server.submit(makeWorkloadRequest({"cilksort", 300, 77, 0.0})));
    EXPECT_EQ(dup.status, JobStatus::CacheHit);
    EXPECT_TRUE(dup.fromCache);
    EXPECT_EQ(dup.digest, first.digest);
    EXPECT_EQ(dup.cycles, first.cycles);
    EXPECT_EQ(dup.attempts, 0u) << "cache hits must not simulate";

    // bypassCache recomputes and validates against the stored entry: an
    // Ok status here *is* the determinism assertion.
    JobRequest again = makeWorkloadRequest({"cilksort", 300, 77, 0.0});
    again.bypassCache = true;
    JobReport fresh = server.wait(server.submit(std::move(again)));
    EXPECT_EQ(fresh.status, JobStatus::Ok) << fresh.error;
    EXPECT_EQ(fresh.digest, first.digest);
    EXPECT_EQ(fresh.cycles, first.cycles);
}

TEST(Fleet, DigestsAndCyclesMatchStandaloneRun)
{
    // Standalone run, exactly as the pre-fleet tests do it.
    Machine machine(MachineConfig::tiny());
    CilkSortData data = cilksortSetup(machine, 400, 900);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Cycles standalone_cycles =
        rt.run([&](TaskContext &tc) { cilksortKernel(tc, data); });
    uint64_t standalone_digest =
        fnvDigest(downloadArray<uint32_t>(machine, data.data, data.n));

    FleetConfig cfg;
    cfg.workers = 2;
    FleetServer server(cfg);
    JobRequest req = makeWorkloadRequest({"cilksort", 400, 900, 0.0});
    req.armChecker = false; // match the standalone run above
    JobReport report = server.wait(server.submit(std::move(req)));
    ASSERT_EQ(report.status, JobStatus::Ok) << report.error;
    EXPECT_EQ(report.digest, standalone_digest);
    EXPECT_EQ(report.cycles, standalone_cycles)
        << "fleet execution must not disturb simulated time";
}

TEST(Fleet, AssetCacheBuildsSharedInputsOnce)
{
    FleetConfig cfg;
    cfg.workers = 1;
    FleetServer server(cfg);
    // Same workload, different runtime configs: different spec keys, so
    // both actually simulate — but the input keys build only once.
    JobRequest a = makeWorkloadRequest({"cilksort", 300, 5, 0.0});
    JobRequest b = makeWorkloadRequest({"cilksort", 300, 5, 0.0});
    b.runtime = RuntimeConfig::queueOnly();
    FleetServer::JobId ia = server.submit(std::move(a));
    FleetServer::JobId ib = server.submit(std::move(b));
    EXPECT_EQ(server.wait(ia).status, JobStatus::Ok);
    EXPECT_EQ(server.wait(ib).status, JobStatus::Ok);
    EXPECT_EQ(server.assets().builds(), 1u);
    EXPECT_GE(server.assets().hits(), 1u);
}

// ---- Supervision: hang, budget, deadline --------------------------------

TEST(Fleet, HangRetriedThenQuarantined)
{
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.retry = instantRetry(3);
    FleetServer server(cfg);
    JobReport report = server.wait(server.submit(denialHangRequest(60'000)));
    EXPECT_EQ(report.status, JobStatus::Hang);
    EXPECT_EQ(report.attempts, 3u) << "hangs must exhaust the retry budget";
    EXPECT_EQ(report.backoffMs.size(), 2u)
        << "one backoff recorded between each pair of attempts";
    EXPECT_TRUE(report.quarantined);
    EXPECT_NE(report.error.find("watchdog"), std::string::npos)
        << report.error;
    EXPECT_FALSE(report.dump.empty()) << "hang reports carry a state dump";

    // The same spec is now refused outright.
    JobReport refused = server.wait(server.submit(denialHangRequest(60'000)));
    EXPECT_EQ(refused.status, JobStatus::Quarantined);
    EXPECT_EQ(refused.attempts, 0u);
}

TEST(Fleet, RetryBackoffScheduleIsSeedDeterministic)
{
    // Two servers, same spec: the recorded backoff schedules must be
    // identical, because they derive from the spec key alone.
    auto run_once = [] {
        FleetConfig cfg;
        cfg.workers = 1;
        cfg.retry = instantRetry(4);
        FleetServer server(cfg);
        return server.wait(server.submit(denialHangRequest(60'000)));
    };
    JobReport a = run_once();
    JobReport b = run_once();
    ASSERT_EQ(a.backoffMs.size(), 3u);
    EXPECT_EQ(a.backoffMs, b.backoffMs);
}

TEST(Fleet, CycleBudgetExceededRetriedThenQuarantined)
{
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.retry = instantRetry(2);
    FleetServer server(cfg);
    JobRequest req = makeWorkloadRequest({"fib", 13, 0, 0.0});
    req.limits.cycleBudget = 1000; // far below what fib(13) needs
    JobReport report = server.wait(server.submit(std::move(req)));
    EXPECT_EQ(report.status, JobStatus::BudgetExceeded);
    EXPECT_EQ(report.attempts, 2u);
    EXPECT_TRUE(report.quarantined);
}

TEST(Fleet, WallDeadlineKillsWatchdoglessHang)
{
    // Watchdog fully disabled: only the wall-clock supervisor can save
    // this run. The monitor thread must flip the cancel flag and the
    // engine must unwind as deadline_exceeded.
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.retry = instantRetry(2);
    FleetServer server(cfg);
    JobRequest req = denialHangRequest(0);
    req.runtime.watchdogSwitches = 0;
    req.limits.wallDeadlineMs = 50;
    JobReport report = server.wait(server.submit(std::move(req)));
    EXPECT_EQ(report.status, JobStatus::DeadlineExceeded);
    EXPECT_EQ(report.attempts, 2u);
    EXPECT_TRUE(report.quarantined);
}

// ---- Fail-fast failures --------------------------------------------------

TEST(Fleet, SetupFailureFailsFastWithMessage)
{
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.retry = instantRetry(3);
    FleetServer server(cfg);
    JobRequest req;
    req.name = "broken-setup";
    req.cacheKey = "broken-setup";
    req.prepare = [](Machine &, AssetCache &) -> PreparedJob {
        throw std::runtime_error("input matrix file not found");
    };
    JobReport report = server.wait(server.submit(std::move(req)));
    EXPECT_EQ(report.status, JobStatus::SetupFailure);
    EXPECT_EQ(report.attempts, 1u) << "deterministic failures never retry";
    EXPECT_NE(report.error.find("input matrix file not found"),
              std::string::npos);
    EXPECT_TRUE(report.quarantined);
}

TEST(Fleet, DigestMismatchFailsFast)
{
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.retry = instantRetry(3);
    FleetServer server(cfg);
    JobRequest req = makeWorkloadRequest({"fib", 11, 0, 0.0});
    req.expectedDigest ^= 1; // sabotage the reference
    JobReport report = server.wait(server.submit(std::move(req)));
    EXPECT_EQ(report.status, JobStatus::DigestMismatch);
    EXPECT_EQ(report.attempts, 1u);
    EXPECT_TRUE(report.quarantined);
}

// A raw-body job (PreparedJob::rawBody) bypasses the task runtimes:
// every core's body runs directly under Machine::run, cycles come from
// the engine clock, and the digest contract still applies. This is the
// mode the machine-level benches (fig05) use.
TEST(Fleet, RawBodyJobRunsWithoutRuntime)
{
    FleetConfig cfg;
    cfg.workers = 2;
    FleetServer server(cfg);
    JobRequest req;
    req.name = "raw/counter";
    req.cacheKey = "raw/counter";
    req.machine = MachineConfig::tiny();
    req.armChecker = false;
    const uint64_t cores = req.machine.numCores();
    req.expectedDigest = cores * (cores + 1) / 2;
    req.hasExpectedDigest = true;
    req.prepare = [](Machine &machine, AssetCache &) {
        Addr cell = machine.dramAlloc(4, 4);
        machine.mem().pokeAs<uint32_t>(cell, 0);
        PreparedJob prep;
        prep.rawBody = [cell](Core &core) {
            core.tick(1 + core.id()); // skew the cores' finish times
            core.amoAdd(cell, core.id() + 1);
        };
        prep.digest = [cell](Machine &m) {
            return static_cast<uint64_t>(m.mem().peekAs<uint32_t>(cell));
        };
        return prep;
    };
    JobReport report = server.wait(server.submit(std::move(req)));
    EXPECT_EQ(report.status, JobStatus::Ok) << report.error;
    EXPECT_EQ(report.digest, cores * (cores + 1) / 2);
    EXPECT_GT(report.cycles, 0u);
}

// prepare() must hand back exactly one of root/rawBody; both omissions
// are deterministic setup failures (fail fast, quarantine, no retry).
TEST(Fleet, PreparedJobNeedsExactlyOneBody)
{
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.retry = instantRetry(3);
    FleetServer server(cfg);

    JobRequest neither;
    neither.name = "raw/neither";
    neither.cacheKey = "raw/neither";
    neither.prepare = [](Machine &, AssetCache &) {
        return PreparedJob{};
    };
    JobReport none = server.wait(server.submit(std::move(neither)));
    EXPECT_EQ(none.status, JobStatus::SetupFailure);
    EXPECT_EQ(none.attempts, 1u);
    EXPECT_NE(none.error.find("neither"), std::string::npos)
        << none.error;

    JobRequest both;
    both.name = "raw/both";
    both.cacheKey = "raw/both";
    both.prepare = [](Machine &, AssetCache &) {
        PreparedJob prep;
        prep.root = [](TaskContext &) {};
        prep.rawBody = [](Core &) {};
        return prep;
    };
    JobReport two = server.wait(server.submit(std::move(both)));
    EXPECT_EQ(two.status, JobStatus::SetupFailure);
    EXPECT_EQ(two.attempts, 1u);
    EXPECT_NE(two.error.find("both"), std::string::npos) << two.error;
}

// ---- Graceful degradation ------------------------------------------------

TEST(Fleet, OverflowShedsLowestPriority)
{
    auto started = std::make_shared<std::atomic<bool>>(false);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();

    FleetConfig cfg;
    cfg.workers = 1;
    cfg.maxQueueDepth = 2;
    FleetServer server(cfg);
    FleetServer::JobId pin =
        server.submit(gatedRequest("pin", started, opened));
    spinUntil(*started); // the only worker is now stuck inside `pin`

    JobRequest hi = makeWorkloadRequest({"fib", 8, 0, 0.0});
    hi.priority = 5;
    JobRequest lo = makeWorkloadRequest({"fib", 9, 0, 0.0});
    lo.priority = 1;
    JobRequest mid = makeWorkloadRequest({"fib", 10, 0, 0.0});
    mid.priority = 3;
    FleetServer::JobId hi_id = server.submit(std::move(hi));
    FleetServer::JobId lo_id = server.submit(std::move(lo));
    FleetServer::JobId mid_id = server.submit(std::move(mid)); // overflow

    gate.set_value();
    EXPECT_EQ(server.wait(pin).status, JobStatus::Ok);
    EXPECT_EQ(server.wait(hi_id).status, JobStatus::Ok);
    EXPECT_EQ(server.wait(mid_id).status, JobStatus::Ok);
    JobReport shed = server.wait(lo_id);
    EXPECT_EQ(shed.status, JobStatus::Shed);
    EXPECT_NE(shed.error.find("shed"), std::string::npos);
    EXPECT_EQ(server.totals().shed, 1u);
}

TEST(Fleet, NonDrainShutdownCancelsQueuedAndRunning)
{
    auto started = std::make_shared<std::atomic<bool>>(false);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();

    FleetConfig cfg;
    cfg.workers = 1;
    FleetServer server(cfg);
    // The pinned job simulates forever once released (a denial hang with
    // the watchdog disarmed), so the shutdown cancel is the only way it
    // can terminate — no ordering of gate-release vs shutdown lets it
    // slip through as Ok.
    JobRequest pin = gatedRequest("pin", started, opened);
    pin.runtime.watchdogCycles = 0;
    pin.runtime.watchdogSwitches = 0;
    pin.prepare = [started, opened](Machine &, AssetCache &) {
        started->store(true, std::memory_order_release);
        opened.wait();
        PreparedJob prep;
        prep.root = [](TaskContext &tc) {
            tc.setReadyCount(1);
            tc.waitChildren(); // never satisfied: spins until cancelled
        };
        return prep;
    };
    FleetServer::JobId running = server.submit(std::move(pin));
    spinUntil(*started);
    FleetServer::JobId queued =
        server.submit(makeWorkloadRequest({"fib", 10, 0, 0.0}));

    // shutdown(false) blocks joining the pinned worker, so it runs on a
    // helper thread; releasing the gate lets the cancel flag take effect
    // at the first engine dispatch.
    std::thread stopper([&] { server.shutdown(false); });
    gate.set_value();
    stopper.join();

    EXPECT_EQ(server.wait(queued).status, JobStatus::Cancelled);
    EXPECT_EQ(server.wait(running).status, JobStatus::Cancelled);
    EXPECT_THROW(server.submit(makeWorkloadRequest({"fib", 8, 0, 0.0})),
                 std::runtime_error);
}

TEST(Fleet, DrainShutdownFinishesQueuedWork)
{
    FleetConfig cfg;
    cfg.workers = 2;
    FleetServer server(cfg);
    std::vector<FleetServer::JobId> ids;
    for (uint32_t n = 8; n <= 12; ++n)
        ids.push_back(server.submit(makeWorkloadRequest({"fib", n, 0, 0.0})));
    server.shutdown(true);
    for (FleetServer::JobId id : ids)
        EXPECT_EQ(server.wait(id).status, JobStatus::Ok);
}

// ---- Acceptance batch ----------------------------------------------------

TEST(Fleet, AcceptanceBatchDegradesGracefully)
{
    // The ISSUE's acceptance scenario in one batch: a deliberately hung
    // job (straggler fault plan with no watchdog margin), a crashing
    // setup, and duplicate requests — the batch must complete with the
    // hang deadline-killed/retried/quarantined, the duplicates served
    // from cache for free, and every successful digest byte-identical
    // to the host reference.
    FleetConfig cfg;
    cfg.workers = 2;
    cfg.retry = instantRetry(2);
    FleetServer server(cfg);

    JobRequest broken;
    broken.name = "broken-setup";
    broken.cacheKey = "broken-setup";
    broken.prepare = [](Machine &, AssetCache &) -> PreparedJob {
        throw std::runtime_error("synthetic setup crash");
    };

    FleetServer::JobId fib_id =
        server.submit(makeWorkloadRequest({"fib", 13, 0, 0.0}));
    FleetServer::JobId hang_id = server.submit(stragglerHangRequest());
    FleetServer::JobId broken_id = server.submit(std::move(broken));
    FleetServer::JobId sort_id =
        server.submit(makeWorkloadRequest({"cilksort", 400, 900, 0.0}));
    JobReport fib_report = server.wait(fib_id);
    // Duplicates of both kinds, submitted after their primaries settled.
    FleetServer::JobId fib_dup =
        server.submit(makeWorkloadRequest({"fib", 13, 0, 0.0}));
    JobReport hang_report = server.wait(hang_id);
    FleetServer::JobId hang_dup = server.submit(stragglerHangRequest());

    EXPECT_EQ(fib_report.status, JobStatus::Ok) << fib_report.error;
    EXPECT_EQ(fib_report.digest, static_cast<uint64_t>(fibReference(13)));
    EXPECT_EQ(hang_report.status, JobStatus::Hang);
    EXPECT_EQ(hang_report.attempts, 2u);
    EXPECT_TRUE(hang_report.quarantined);
    EXPECT_EQ(server.wait(broken_id).status, JobStatus::SetupFailure);
    EXPECT_EQ(server.wait(sort_id).status, JobStatus::Ok);
    EXPECT_EQ(server.wait(fib_dup).status, JobStatus::CacheHit);
    EXPECT_EQ(server.wait(fib_dup).digest, fib_report.digest);
    EXPECT_EQ(server.wait(hang_dup).status, JobStatus::Quarantined);

    FleetServer::Totals totals = server.totals();
    EXPECT_EQ(totals.jobs, 6u);
    EXPECT_EQ(totals.ok, 2u);
    EXPECT_EQ(totals.cacheHits, 1u);
    EXPECT_EQ(totals.failures, 2u);
    EXPECT_EQ(totals.quarantinedRefusals, 1u);
    EXPECT_EQ(totals.retries, 1u) << "the hang retried exactly once";
    EXPECT_GT(totals.simsPerSec, 0.0);

    std::string json = server.reportJson();
    EXPECT_NE(json.find("\"schema\":\"spmrt-fleet-report-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\":\"hang\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"setup_failure\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"cache_hit\""), std::string::npos);
}

} // namespace
} // namespace serve
} // namespace spmrt
