/**
 * @file
 * Property tests for the compiled NoC route tables.
 *
 * The contract is that compiled traversal is a pure host optimization:
 * for any (src, dst, time, payload) sequence, a MeshNoc with compiled
 * routes produces delivery times and link statistics identical to one
 * forced onto the uncached per-hop walk, because both charge the same
 * links the same flits in the same order. Whenever a FaultPlan carries
 * link-delay windows the compiled instance must itself fall back to the
 * walk, so injected timing is never skipped — including for packets
 * straddling the edges of the delay windows.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/noc.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"

namespace spmrt {
namespace {

/** Deterministic 64-bit mix (splitmix64) — no global RNG state. */
uint64_t
mix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Every endpoint of @p cfg: all cores plus all LLC banks. */
std::vector<NocEndpoint>
allEndpoints(const MachineConfig &cfg, MeshNoc &noc)
{
    std::vector<NocEndpoint> points;
    for (CoreId id = 0; id < cfg.numCores(); ++id)
        points.push_back(noc.coreEndpoint(id));
    for (uint32_t bank = 0; bank < cfg.llcBanks; ++bank)
        points.push_back(noc.bankEndpoint(bank));
    return points;
}

/** One random packet drawn from @p state. */
struct Packet
{
    size_t src;
    size_t dst;
    Cycles start;
    uint32_t payload;
};

std::vector<Packet>
makeTraffic(uint64_t seed, size_t num_endpoints, size_t count)
{
    std::vector<Packet> traffic;
    uint64_t state = seed;
    Cycles t = 0;
    for (size_t i = 0; i < count; ++i) {
        Packet p;
        p.src = mix64(state) % num_endpoints;
        p.dst = mix64(state) % num_endpoints;
        // Mostly advancing time with occasional same-cycle bursts, so
        // link backlogs both build and drain.
        t += mix64(state) % 3;
        p.start = t;
        p.payload = 4u << (mix64(state) % 5); // 4..64 bytes
        traffic.push_back(p);
    }
    return traffic;
}

/**
 * Drive identical traffic through a compiled and a walk-forced MeshNoc
 * (same optional fault plan on both) and require identical delivery
 * times and link statistics.
 */
void
expectEquivalent(const MachineConfig &cfg, uint64_t seed, FaultPlan *plan)
{
    MeshNoc compiled(cfg);
    MeshNoc walked(cfg);
    walked.setCompiledRoutes(false);
    // Each instance needs its own plan object: the plan accumulates
    // injected-delay totals as it is queried.
    FaultPlan plan_copy;
    if (plan != nullptr) {
        plan_copy = *plan;
        compiled.setFaultPlan(plan);
        walked.setFaultPlan(&plan_copy);
    }

    std::vector<NocEndpoint> points = allEndpoints(cfg, compiled);
    for (const Packet &p : makeTraffic(seed, points.size(), 400)) {
        Cycles a = compiled.traverse(points[p.src], points[p.dst], p.start,
                                     p.payload);
        Cycles b = walked.traverse(points[p.src], points[p.dst], p.start,
                                   p.payload);
        ASSERT_EQ(a, b) << "delivery time diverged (seed " << seed << ")";
    }
    EXPECT_EQ(compiled.linkCyclesUsed(), walked.linkCyclesUsed());
    EXPECT_EQ(compiled.packetsRouted(), walked.packetsRouted());
    EXPECT_EQ(compiled.linkFlits(), walked.linkFlits());
    EXPECT_EQ(compiled.linkWaitCycles(), walked.linkWaitCycles());
}

TEST(NocRoutes, CompiledMatchesWalkAcrossSeeds)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        expectEquivalent(MachineConfig::tiny(), seed, nullptr);
        expectEquivalent(MachineConfig::small(), seed, nullptr);
    }
}

TEST(NocRoutes, CompiledMatchesWalkOnFullMachine)
{
    expectEquivalent(MachineConfig{}, 11, nullptr); // 16x8, ruche 3
}

/** The free-geometry matrix: wide, tall, Y-ruched, asymmetric-LLC and
 *  stacked-bank machines. Every shape the config layer admits must keep
 *  the compiled tables bit-equal to the per-hop walk — the route
 *  compiler and the walker share no generalized-placement code beyond
 *  MachineConfig's helpers, so this is the test that catches one of
 *  them hard-coding the paper's floorplan. */
TEST(NocRoutes, CompiledMatchesWalkAcrossGeometries)
{
    struct Shape
    {
        uint32_t cols, rows, rucheX, rucheY, banks;
        LlcPlacement place;
    };
    const Shape shapes[] = {
        {32, 2, 5, 0, 8, LlcPlacement::TopBottom},  // wide, long X ruche
        {2, 32, 0, 5, 4, LlcPlacement::TopBottom},  // tall, long Y ruche
        {16, 16, 3, 3, 32, LlcPlacement::TopBottom}, // big256 shape
        {8, 8, 2, 2, 8, LlcPlacement::Top},          // one-edge LLC
        {8, 8, 3, 3, 8, LlcPlacement::Bottom},       // other edge
        {4, 4, 2, 2, 16, LlcPlacement::TopBottom},   // stacked banks
        {5, 7, 3, 4, 10, LlcPlacement::TopBottom},   // non-power-of-two
    };
    uint64_t seed = 21;
    for (const Shape &s : shapes) {
        MachineConfig cfg = MachineConfig::tiny();
        cfg.meshCols = s.cols;
        cfg.meshRows = s.rows;
        cfg.rucheX = s.rucheX;
        cfg.rucheY = s.rucheY;
        cfg.llcBanks = s.banks;
        cfg.llcPlacement = s.place;
        cfg.validate();
        expectEquivalent(cfg, seed++, nullptr);
    }
}

TEST(NocRoutes, CompiledMatchesWalkOn1024Cores)
{
    expectEquivalent(MachineConfig::big1024(), 31, nullptr);
}

TEST(NocRoutes, RucheYFaultWindowsStillMatchWalk)
{
    // Chaos plans force the per-hop walk; a Y-ruched mesh must inject
    // identical delays on both sides (the Y express hop is charged on
    // the launching node, exactly like the X express hop).
    MachineConfig cfg = MachineConfig::small(); // 8x4
    cfg.rucheY = 2;
    cfg.validate();
    for (uint64_t plan_seed = 1; plan_seed <= 3; ++plan_seed) {
        FaultPlan plan = FaultPlan::chaos(plan_seed, cfg);
        expectEquivalent(cfg, 200 + plan_seed, &plan);
    }
}

TEST(NocRoutes, FaultMatrixMatchesWalkCycleForCycle)
{
    // Chaos plans include link-delay windows, so the compiled instance
    // falls back to the walk; both sides must still agree exactly.
    for (uint64_t plan_seed = 1; plan_seed <= 6; ++plan_seed) {
        MachineConfig cfg = MachineConfig::small();
        FaultPlan plan = FaultPlan::chaos(plan_seed, cfg);
        expectEquivalent(cfg, 100 + plan_seed, &plan);
    }
}

TEST(NocRoutes, WindowEdgeStraddlesMatchWalk)
{
    // A hand-built window on the links out of (0, 0) — the injection
    // node, so the first hop is queried exactly at the injection time —
    // with packets just before the start, on the boundaries, and just
    // after the end: the off-by-one cases a cached route could get wrong.
    MachineConfig cfg = MachineConfig::small();
    const Cycles kStart = 50, kEnd = 90;
    FaultPlan plan;
    plan.delayLinks(0, 0, kStart, kEnd, 7);

    MeshNoc compiled(cfg);
    MeshNoc walked(cfg);
    walked.setCompiledRoutes(false);
    FaultPlan plan_copy = plan;
    compiled.setFaultPlan(&plan);
    walked.setFaultPlan(&plan_copy);

    NocEndpoint src = compiled.coreEndpoint(0);
    NocEndpoint dst = compiled.coreEndpoint(3); // X path out of (0, 0)
    const Cycles probes[] = {kStart - 1, kStart, kStart + 1, kEnd - 1,
                             kEnd,       kEnd + 1};
    for (Cycles t : probes) {
        Cycles a = compiled.traverse(src, dst, t, 4);
        Cycles b = walked.traverse(src, dst, t, 4);
        EXPECT_EQ(a, b) << "at t=" << t;
    }
    // Both sides must have injected the same (non-zero) total delay.
    EXPECT_EQ(plan.injected().linkDelayCycles,
              plan_copy.injected().linkDelayCycles);
    EXPECT_GT(plan.injected().linkDelayCycles, 0u);
}

TEST(NocRoutes, FallbackEngagesAndDisengagesWithThePlan)
{
    MachineConfig cfg = MachineConfig::tiny();
    FaultPlan plan;
    plan.delayLinks(0, 0, 10, 20, 3);

    MeshNoc noc(cfg);
    NocEndpoint src = noc.coreEndpoint(0);
    NocEndpoint dst = noc.coreEndpoint(cfg.numCores() - 1);

    noc.traverse(src, dst, 0, 4);
    EXPECT_EQ(noc.compiledTraversals(), 1u);
    EXPECT_EQ(noc.walkedTraversals(), 0u);

    // Installing a plan with link windows forces the walk — even for
    // packets entirely outside the window.
    noc.setFaultPlan(&plan);
    noc.traverse(src, dst, 1000, 4);
    EXPECT_EQ(noc.compiledTraversals(), 1u);
    EXPECT_EQ(noc.walkedTraversals(), 1u);

    // A plan without link windows does not.
    FaultPlan no_links;
    no_links.stallCore(0, 0, 100, 2);
    noc.setFaultPlan(&no_links);
    noc.traverse(src, dst, 2000, 4);
    EXPECT_EQ(noc.compiledTraversals(), 2u);
    EXPECT_EQ(noc.walkedTraversals(), 1u);

    // Clearing the plan re-engages the compiled tables.
    noc.setFaultPlan(nullptr);
    noc.traverse(src, dst, 3000, 4);
    EXPECT_EQ(noc.compiledTraversals(), 3u);
    EXPECT_EQ(noc.walkedTraversals(), 1u);

    // Disabling compiled routes outright forces the walk.
    noc.setCompiledRoutes(false);
    noc.traverse(src, dst, 4000, 4);
    EXPECT_EQ(noc.compiledTraversals(), 3u);
    EXPECT_EQ(noc.walkedTraversals(), 2u);
}

TEST(NocRoutes, ResetKeepsRoutesAndClearsCounters)
{
    MachineConfig cfg = MachineConfig::tiny();
    MeshNoc compiled(cfg);
    MeshNoc walked(cfg);
    walked.setCompiledRoutes(false);

    NocEndpoint src = compiled.coreEndpoint(0);
    NocEndpoint dst = compiled.coreEndpoint(cfg.numCores() - 1);
    compiled.traverse(src, dst, 0, 16);
    walked.traverse(src, dst, 0, 16);

    compiled.reset();
    walked.reset();
    EXPECT_EQ(compiled.compiledTraversals(), 0u);

    // Routes compiled before the reset must still match a fresh walk.
    Cycles a = compiled.traverse(src, dst, 5, 16);
    Cycles b = walked.traverse(src, dst, 5, 16);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace spmrt
