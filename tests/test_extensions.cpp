/**
 * @file
 * Tests for the extensions beyond the paper's core system: the
 * parallel_scan pattern, the connected-components workload, work
 * dealing, and the victim-policy knob's interaction with them.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "parallel/scan.hpp"
#include "workloads/components.hpp"
#include "workloads/fib.hpp"
#include "workloads/uts.hpp"

namespace spmrt {
namespace {

using namespace spmrt::workloads;

// ---- parallel_scan ---------------------------------------------------------

class ScanTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ScanTest, MatchesSerialExclusiveScan)
{
    const uint32_t count = GetParam();
    Machine machine(MachineConfig::tiny());
    Xoshiro256StarStar rng(count + 1);
    std::vector<uint32_t> input(count);
    for (auto &value : input)
        value = static_cast<uint32_t>(rng.nextBounded(1000));
    Addr base = count > 0 ? uploadArray(machine, input)
                          : machine.dramAlloc(4);

    uint32_t total = 0;
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) {
        total = parallelScanU32(tc, base, count);
    });

    std::vector<uint32_t> expected(count);
    uint32_t running = 0;
    for (uint32_t i = 0; i < count; ++i) {
        expected[i] = running;
        running += input[i];
    }
    EXPECT_EQ(total, running);
    if (count > 0) {
        auto actual = downloadArray<uint32_t>(machine, base, count);
        EXPECT_EQ(actual, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0, 1, 2, 15, 16, 17, 100, 1000,
                                           4096));

TEST(ScanTest2, WorksOnStaticRuntime)
{
    constexpr uint32_t kN = 500;
    Machine machine(MachineConfig::tiny());
    std::vector<uint32_t> ones(kN, 1);
    Addr base = uploadArray(machine, ones);
    uint32_t total = 0;
    StaticRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) {
        total = parallelScanU32(tc, base, kN);
    });
    EXPECT_EQ(total, kN);
    auto actual = downloadArray<uint32_t>(machine, base, kN);
    for (uint32_t i = 0; i < kN; ++i)
        EXPECT_EQ(actual[i], i);
}

// ---- connected components ----------------------------------------------------

TEST(Components, TwoIslands)
{
    // Two disjoint cliques: labels must converge to each island's min.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t v = 0; v < 4; ++v)
        for (uint32_t w = v + 1; w < 4; ++w)
            edges.emplace_back(v, w);
    for (uint32_t v = 4; v < 8; ++v)
        for (uint32_t w = v + 1; w < 8; ++w)
            edges.emplace_back(v, w);
    HostGraph graph = HostGraph::fromEdges(8, edges);

    Machine machine(MachineConfig::tiny());
    ComponentsData data = componentsSetup(machine, graph);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { componentsKernel(tc, data); });
    EXPECT_TRUE(componentsVerify(machine, data, graph));
    auto labels = downloadArray<uint32_t>(machine, data.labels, 8);
    for (uint32_t v = 0; v < 4; ++v)
        EXPECT_EQ(labels[v], 0u);
    for (uint32_t v = 4; v < 8; ++v)
        EXPECT_EQ(labels[v], 4u);
}

TEST(Components, RandomGraphsMatchUnionFind)
{
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        HostGraph graph = genUniformRandom(300, 2, seed);
        Machine machine(MachineConfig::tiny());
        ComponentsData data = componentsSetup(machine, graph);
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        rt.run([&](TaskContext &tc) { componentsKernel(tc, data); });
        EXPECT_TRUE(componentsVerify(machine, data, graph))
            << "seed " << seed;
    }
}

TEST(Components, ChainNeedsMultipleRounds)
{
    // A long path: label 0 must propagate hop by hop.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t v = 0; v + 1 < 64; ++v)
        edges.emplace_back(v, v + 1);
    HostGraph graph = HostGraph::fromEdges(64, edges);
    Machine machine(MachineConfig::tiny());
    ComponentsData data = componentsSetup(machine, graph);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    uint32_t rounds = 0;
    rt.run([&](TaskContext &tc) {
        rounds = componentsKernel(tc, data);
    });
    EXPECT_TRUE(componentsVerify(machine, data, graph));
    EXPECT_GT(rounds, 2u);
}

TEST(Components, WorksOnStaticRuntime)
{
    HostGraph graph = genUniformRandom(200, 3, 11);
    Machine machine(MachineConfig::tiny());
    ComponentsData data = componentsSetup(machine, graph);
    StaticRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { componentsKernel(tc, data); });
    EXPECT_TRUE(componentsVerify(machine, data, graph));
}

// ---- work dealing -----------------------------------------------------------

TEST(WorkDealing, FibStillCorrect)
{
    Machine machine(MachineConfig::tiny());
    Addr out = machine.dramAlloc(8, 8);
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.workDealing = true;
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { fibKernel(tc, 13, out); });
    EXPECT_EQ(machine.mem().peekAs<int64_t>(out), fibReference(13));
}

TEST(WorkDealing, NeverSteals)
{
    Machine machine(MachineConfig::tiny());
    Addr out = machine.dramAlloc(8, 8);
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.workDealing = true;
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { fibKernel(tc, 12, out); });
    EXPECT_EQ(machine.totalStat(&RuntimeStats::stealHits), 0u);
    EXPECT_EQ(machine.totalStat(&RuntimeStats::stealAttempts), 0u);
}

TEST(WorkDealing, SpreadsWorkAcrossCores)
{
    Machine machine(MachineConfig::tiny());
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.workDealing = true;
    WorkStealingRuntime rt(machine, cfg);
    std::set<CoreId> executors;
    rt.run(
        [&](TaskContext &tc) {
            tc.setReadyCount(16);
            for (int i = 0; i < 16; ++i) {
                auto *child = makeClosureTask([&](TaskContext &ctc) {
                    executors.insert(ctc.core().id());
                    ctc.core().tick(1000);
                });
                child->runtimeOwned = true;
                tc.prepareChild(child);
                tc.spawn(child);
            }
            tc.waitChildren();
        },
        /*root_frame_bytes=*/160);
    EXPECT_GT(executors.size(), 2u)
        << "dealing must distribute spawns across cores";
}

TEST(WorkDealing, UtsCorrectUnderDealing)
{
    UtsParams params = UtsParams::geometric(7, 2.0, 5);
    Machine machine(MachineConfig::tiny());
    UtsData data = utsSetup(machine, params);
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.workDealing = true;
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { utsKernel(tc, data); });
    EXPECT_EQ(utsResult(machine, data), utsReference(params));
}

} // namespace
} // namespace spmrt
