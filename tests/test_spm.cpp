/**
 * @file
 * Unit tests for the scratchpad layer: layout carving, the user allocator
 * (spm_reserve/spm_malloc semantics), and the stack model with DRAM
 * overflow.
 */

#include <gtest/gtest.h>

#include "spm/layout.hpp"
#include "spm/stack.hpp"
#include "sim/machine.hpp"

namespace spmrt {
namespace {

TEST(SpmLayout, DefaultCarving)
{
    MachineConfig cfg;
    SpmLayout layout(cfg, 0, 512);
    const uint32_t ctrl = SpmLayout::kCtrlBytes;
    EXPECT_EQ(layout.userBytes(), 0u);
    EXPECT_EQ(layout.queueBytes(), 512u);
    EXPECT_EQ(layout.stackBytes(), cfg.spmBytes - 512u - ctrl);
    EXPECT_EQ(layout.queueOffset(), cfg.spmBytes - 512u - ctrl);
    EXPECT_EQ(layout.ctrlOffset(), cfg.spmBytes - ctrl);
}

TEST(SpmLayout, UserReserveShrinksStack)
{
    MachineConfig cfg;
    SpmLayout layout(cfg, 3072, 512); // MatMul-style 3 KB reservation
    EXPECT_EQ(layout.userBytes(), 3072u);
    EXPECT_EQ(layout.stackBytes(),
              cfg.spmBytes - 3072u - 512u - SpmLayout::kCtrlBytes);
    EXPECT_EQ(layout.stackLowOffset(), 3072u);
}

TEST(SpmLayout, QueueAtSameOffsetOnAllCores)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    SpmLayout layout(cfg, 0, 512);
    Addr q0 = layout.queueBase(map, 0);
    Addr q3 = layout.queueBase(map, 3);
    EXPECT_EQ(q0 - map.spmBase(0), q3 - map.spmBase(3));
}

TEST(SpmUserAllocator, ReserveMallocContract)
{
    SpmUserAllocator alloc(0x1000'0000, 256);
    Addr a = alloc.malloc(100);
    EXPECT_NE(a, kNullAddr);
    Addr b = alloc.malloc(100);
    EXPECT_NE(b, kNullAddr);
    // Third allocation exceeds the reservation: must fail with null, the
    // paper's reporting mechanism.
    EXPECT_EQ(alloc.malloc(100), kNullAddr);
}

TEST(SpmUserAllocator, AlignsAllocations)
{
    SpmUserAllocator alloc(0x1000'0000, 256);
    (void)alloc.malloc(3, 8);
    Addr b = alloc.malloc(8, 64);
    EXPECT_EQ(b % 64, 0u);
}

class StackModelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        machine_ = std::make_unique<Machine>(MachineConfig::tiny());
        dramBuf_ = machine_->dramAlloc(4096);
    }

    StackConfig
    makeConfig(bool spm_resident, uint32_t spm_stack_bytes = 512)
    {
        StackConfig cfg;
        Addr base = machine_->mem().map().spmBase(0);
        cfg.spmLow = base;
        cfg.spmTop = base + spm_stack_bytes;
        cfg.dramBase = dramBuf_;
        cfg.dramBytes = 4096;
        cfg.spmResident = spm_resident;
        return cfg;
    }

    std::unique_ptr<Machine> machine_;
    Addr dramBuf_ = kNullAddr;
};

TEST_F(StackModelTest, FramesLiveInSpmUntilOverflow)
{
    auto cfg = makeConfig(true, 256);
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        // 256 bytes of SPM stack = four 64-byte frames.
        for (int i = 0; i < 4; ++i) {
            stack.push(64);
            EXPECT_FALSE(stack.topInDram());
        }
        stack.push(64); // fifth frame must overflow
        EXPECT_TRUE(stack.topInDram());
        EXPECT_EQ(core.stats().rt.stackFramesOverflowed, 1u);
        for (int i = 0; i < 5; ++i)
            stack.pop();
        // After popping back below the threshold, SPM is used again.
        stack.push(64);
        EXPECT_FALSE(stack.topInDram());
        stack.pop();
    });
}

TEST_F(StackModelTest, DramResidentStackNeverUsesSpm)
{
    auto cfg = makeConfig(false);
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        stack.push(64);
        EXPECT_TRUE(stack.topInDram());
        stack.pop();
    });
}

TEST_F(StackModelTest, SpmFramesCheaperThanDramFrames)
{
    auto spm_cfg = makeConfig(true);
    auto dram_cfg = makeConfig(false);
    Cycles spm_cost = 0, dram_cost = 0;
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        {
            StackModel stack(core, spm_cfg);
            Cycles t0 = core.now();
            stack.push(64);
            stack.pop();
            spm_cost = core.now() - t0;
        }
        {
            StackModel stack(core, dram_cfg);
            Cycles t0 = core.now();
            stack.push(64);
            stack.pop();
            dram_cost = core.now() - t0;
        }
    });
    EXPECT_LT(spm_cost, dram_cost)
        << "SPM-resident frames must be cheaper to push/pop";
}

TEST_F(StackModelTest, SoftwareOverflowCheckAddsCycles)
{
    auto hw_cfg = makeConfig(true);
    auto sw_cfg = makeConfig(true);
    sw_cfg.swOverflowCheck = true;
    Cycles hw_cost = 0, sw_cost = 0;
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        {
            StackModel stack(core, hw_cfg);
            Cycles t0 = core.now();
            for (int i = 0; i < 4; ++i) {
                stack.push(32);
            }
            for (int i = 0; i < 4; ++i)
                stack.pop();
            hw_cost = core.now() - t0;
        }
        {
            StackModel stack(core, sw_cfg);
            Cycles t0 = core.now();
            for (int i = 0; i < 4; ++i) {
                stack.push(32);
            }
            for (int i = 0; i < 4; ++i)
                stack.pop();
            sw_cost = core.now() - t0;
        }
    });
    // 2 extra cycles per call and per return, 8 events: +16 cycles.
    EXPECT_EQ(sw_cost, hw_cost + 16);
}

TEST_F(StackModelTest, FrameLocalAllocation)
{
    auto cfg = makeConfig(true);
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        {
            StackFrame frame(stack, 64);
            Addr a = frame.alloc(8);
            Addr b = frame.alloc(8);
            EXPECT_NE(a, b);
            EXPECT_GE(a, frame.base() + stack.localsOffset());
            EXPECT_LT(b + 8, frame.base() + frame.bytes() + 1);
            // Locals are real simulated memory.
            core.store<uint32_t>(a, 0x1234);
            EXPECT_EQ(core.load<uint32_t>(a), 0x1234u);
        }
        EXPECT_EQ(stack.depth(), 0u);
    });
}

TEST_F(StackModelTest, OverflowingFrameLocalsLandInDram)
{
    auto cfg = makeConfig(true, 128);
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        StackFrame a(stack, 128); // consumes the whole SPM stack region
        StackFrame b(stack, 64);  // must overflow
        EXPECT_TRUE(stack.topInDram());
        Addr local = b.alloc(4);
        EXPECT_TRUE(core.mem().map().isDram(local));
    });
}

TEST_F(StackModelTest, OverflowBoundaryIsExact)
{
    // A frame that exactly fills the SPM stack region stays resident; a
    // frame one byte larger (rounded up to the 8-byte frame alignment)
    // overflows. The residency check must not be off by one in either
    // direction.
    auto cfg = makeConfig(true, 256);
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        {
            StackModel stack(core, cfg);
            stack.push(256); // exact fit
            EXPECT_FALSE(stack.topInDram());
            EXPECT_EQ(core.stats().rt.stackFramesOverflowed, 0u);
            stack.pop();
        }
        {
            StackModel stack(core, cfg);
            stack.push(257); // one byte over
            EXPECT_TRUE(stack.topInDram());
            EXPECT_EQ(core.stats().rt.stackFramesOverflowed, 1u);
            EXPECT_EQ(core.stats().rt.stackFramesPushed, 2u);
            stack.pop();
        }
    });
}

TEST_F(StackModelTest, DramExhaustionReportsCoreAndDepth)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Overflow-buffer exhaustion must name the core, the depth and the
    // config knob to raise, not just die.
    auto cfg = makeConfig(false); // DRAM-resident, 4096-byte buffer
    EXPECT_DEATH(machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        for (int i = 0; i < 100; ++i) // 100 * 64 B > 4096 B
            stack.push(64);
    }),
                 "core 0: DRAM overflow stack exhausted.*depth "
                 "64.*dramStackBytes");
}

TEST_F(StackModelTest, SmashedCanaryIsDetectedOnPop)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto cfg = makeConfig(true);
    cfg.regSaveWords = 4;
    EXPECT_DEATH(machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        Addr base = stack.push(64);
        // Scribble over the callee-save area below localsOffset() —
        // exactly the corruption the canary guards against.
        core.mem().pokeAs<uint32_t>(base, 0xdeadbeef);
        stack.pop();
    }),
                 "stack canary smashed");
}

TEST_F(StackModelTest, CanaryIsPositionDependent)
{
    // Frames at different addresses arm different canary words, so a
    // stale canary copied from another frame cannot pass verification.
    auto cfg = makeConfig(true);
    cfg.regSaveWords = 4;
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        Addr a = stack.push(64);
        Addr b = stack.push(64);
        uint32_t canary_a = core.mem().peekAs<uint32_t>(a);
        uint32_t canary_b = core.mem().peekAs<uint32_t>(b);
        EXPECT_NE(canary_a, canary_b);
        stack.pop();
        stack.pop();
    });
}

} // namespace
} // namespace spmrt
