/**
 * @file
 * Negative-path tests: guard rails that must panic (death tests) and
 * less-travelled API semantics (all AMO operations, bulk-access edge
 * cases, address-map bounds).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "mem/alloc.hpp"
#include "sim/machine.hpp"
#include "spm/layout.hpp"
#include "spm/stack.hpp"

namespace spmrt {
namespace {

using DeathTest = ::testing::Test;

TEST(ErrorsDeathTest, UnmappedAddressPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine machine(MachineConfig::tiny());
    EXPECT_DEATH(machine.mem().peekAs<uint32_t>(0x0000'1234),
                 "unmapped address");
}

TEST(ErrorsDeathTest, SpmOutOfBoundsPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    Machine machine(cfg);
    Addr past_end = machine.mem().map().spmBase(0) + cfg.spmBytes - 2;
    EXPECT_DEATH(machine.mem().peekAs<uint32_t>(past_end),
                 "past implemented");
}

TEST(ErrorsDeathTest, DoubleFreePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RangeAllocator heap(0x1000, 4096);
    Addr block = heap.alloc(64, 8);
    heap.release(block);
    EXPECT_DEATH(heap.release(block), "unallocated");
}

TEST(ErrorsDeathTest, FreeOfUnknownAddressPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RangeAllocator heap(0x1000, 4096);
    EXPECT_DEATH(heap.release(0x1008), "unallocated");
}

TEST(ErrorsDeathTest, StackPopOfEmptyPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine machine(MachineConfig::tiny());
    Addr buf = machine.dramAlloc(4096);
    StackConfig cfg;
    cfg.spmLow = machine.mem().map().spmBase(0);
    cfg.spmTop = cfg.spmLow + 256;
    cfg.dramBase = buf;
    cfg.dramBytes = 4096;
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        EXPECT_DEATH(stack.pop(), "pop of empty");
    });
}

TEST(ErrorsDeathTest, OversizedSpmLayoutIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    EXPECT_DEATH(SpmLayout(cfg, 4096, 512), "overflows");
}

TEST(ErrorsDeathTest, UnalignedAmoPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine machine(MachineConfig::tiny());
    Addr dram = machine.dramAlloc(16);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        EXPECT_DEATH(core.amoAdd(dram + 2, 1), "unaligned AMO");
    });
}

// ---- AMO semantics -----------------------------------------------------------

TEST(AmoSemantics, AllOperationsComputeCorrectly)
{
    Machine machine(MachineConfig::tiny());
    Addr cell = machine.dramAlloc(4);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        auto reset = [&](uint32_t value) {
            core.store<uint32_t>(cell, value);
        };

        reset(10);
        EXPECT_EQ(core.amo(cell, AmoOp::Add, 5), 10u);
        EXPECT_EQ(core.load<uint32_t>(cell), 15u);

        reset(0xf0);
        EXPECT_EQ(core.amo(cell, AmoOp::Or, 0x0f), 0xf0u);
        EXPECT_EQ(core.load<uint32_t>(cell), 0xffu);

        reset(0xff);
        EXPECT_EQ(core.amo(cell, AmoOp::And, 0x0f), 0xffu);
        EXPECT_EQ(core.load<uint32_t>(cell), 0x0fu);

        reset(7);
        EXPECT_EQ(core.amo(cell, AmoOp::Max, 3), 7u);
        EXPECT_EQ(core.load<uint32_t>(cell), 7u);
        EXPECT_EQ(core.amo(cell, AmoOp::Max, 11), 7u);
        EXPECT_EQ(core.load<uint32_t>(cell), 11u);

        reset(7);
        EXPECT_EQ(core.amo(cell, AmoOp::Min, 3), 7u);
        EXPECT_EQ(core.load<uint32_t>(cell), 3u);

        // Min/Max are signed (RV32 amomin/amomax).
        reset(static_cast<uint32_t>(-5));
        EXPECT_EQ(core.amo(cell, AmoOp::Max, 2),
                  static_cast<uint32_t>(-5));
        EXPECT_EQ(core.load<uint32_t>(cell), 2u);

        reset(3);
        EXPECT_EQ(core.amo(cell, AmoOp::Swap, 99), 3u);
        EXPECT_EQ(core.load<uint32_t>(cell), 99u);
    });
}

TEST(AmoSemantics, AddWrapsModulo32Bits)
{
    Machine machine(MachineConfig::tiny());
    Addr cell = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(cell, 0xffffffffu);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        EXPECT_EQ(core.amoAdd(cell, 2), 0xffffffffu);
        EXPECT_EQ(core.load<uint32_t>(cell), 1u);
        // Negative delta == subtraction (the runtime's rc decrement).
        EXPECT_EQ(core.amoAdd(cell, -1), 1u);
        EXPECT_EQ(core.load<uint32_t>(cell), 0u);
    });
}

// ---- bulk access edge cases -----------------------------------------------------

TEST(BulkAccess, UnalignedSpansAcrossLineBoundaries)
{
    Machine machine(MachineConfig::tiny());
    Addr dram = machine.dramAlloc(512, 64);
    std::vector<uint8_t> pattern(200);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint8_t>(i ^ 0x5a);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        // Start 13 bytes into a line so chunks straddle boundaries.
        core.write(dram + 13, pattern.data(), pattern.size());
        std::vector<uint8_t> readback(pattern.size());
        core.read(dram + 13, readback.data(), readback.size());
        EXPECT_EQ(readback, pattern);
    });
}

// An invalid SPMRT_ENGINE_SHARDS value must fail fast at engine
// construction with a diagnostic naming the offending value — not be
// silently clamped into a run the user did not ask for. The setenv runs
// inside the death-test child, so the parent process (and every other
// test) never sees the variable.
TEST(ErrorsDeathTest, ShardEnvZeroPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ::setenv("SPMRT_ENGINE_SHARDS", "0", 1);
            Engine engine(2, 64 * 1024);
        },
        "SPMRT_ENGINE_SHARDS.*'0' is zero");
}

TEST(ErrorsDeathTest, ShardEnvNonNumericPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ::setenv("SPMRT_ENGINE_SHARDS", "many", 1);
            Engine engine(2, 64 * 1024);
        },
        "SPMRT_ENGINE_SHARDS.*'many' is not a number");
}

TEST(ErrorsDeathTest, ShardEnvTrailingGarbagePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ::setenv("SPMRT_ENGINE_SHARDS", "4x", 1);
            Engine engine(2, 64 * 1024);
        },
        "SPMRT_ENGINE_SHARDS.*'4x' has trailing garbage");
}

TEST(ErrorsDeathTest, ShardEnvAutoIsAccepted)
{
    // 'auto' resolves to the host's concurrency (or sequential on an
    // unknown host) — never a panic. The child exits 0 on success;
    // EXPECT_EXIT keeps the setenv quarantined like the death tests.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ::setenv("SPMRT_ENGINE_SHARDS", "auto", 1);
            Engine engine(2, 64 * 1024);
            std::exit(0);
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(ErrorsDeathTest, ShardEnvMisspelledAutoPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ::setenv("SPMRT_ENGINE_SHARDS", "automatic", 1);
            Engine engine(2, 64 * 1024);
        },
        "SPMRT_ENGINE_SHARDS.*'automatic' is not a number");
}

TEST(ErrorsDeathTest, ShardEnvBeyondHostCoresPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    if (std::thread::hardware_concurrency() == 0)
        GTEST_SKIP() << "host core count unknown; upper bound not enforced";
    std::string beyond =
        std::to_string(std::thread::hardware_concurrency() + 1);
    EXPECT_DEATH(
        {
            ::setenv("SPMRT_ENGINE_SHARDS", beyond.c_str(), 1);
            Engine engine(2, 64 * 1024);
        },
        "SPMRT_ENGINE_SHARDS.*exceeds the .* host cores");
}

// ---- machine-geometry validation -----------------------------------------
//
// MachineConfig::validate() is the single choke point for inconsistent
// geometries: Machine's constructor calls it before any layer sizes
// itself from the config, so every broken free parameter must die with a
// diagnostic naming the parameter — never a mis-sized array later.

TEST(ErrorsDeathTest, ZeroMeshDimensionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.meshRows = 0;
    EXPECT_DEATH(Machine machine(cfg), "mesh has a zero dimension");
}

TEST(ErrorsDeathTest, RucheXWiderThanMeshPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny(); // 4x2 mesh
    cfg.rucheX = 4;
    EXPECT_DEATH(Machine machine(cfg), "ruche factor X=4 >= mesh width");
}

TEST(ErrorsDeathTest, RucheYTallerThanMeshPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.rucheY = 2;
    EXPECT_DEATH(Machine machine(cfg), "ruche factor Y=2 >= mesh height");
}

TEST(ErrorsDeathTest, NonPowerOfTwoSpmWindowPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.spmWindowBytes = 0x1800;
    EXPECT_DEATH(Machine machine(cfg), "not a power of two");
}

TEST(ErrorsDeathTest, SpmLargerThanWindowPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.spmBytes = 8192; // > the 4 KiB window stride
    EXPECT_DEATH(Machine machine(cfg), "exceed the 4096-byte window");
}

TEST(ErrorsDeathTest, IndivisibleLlcBankSplitPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.llcBanks = 3; // TopBottom placement needs an even count
    EXPECT_DEATH(Machine machine(cfg),
                 "3 LLC banks not divisible across 2 edge rows");
}

TEST(ErrorsDeathTest, ZeroDramChannelsPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.dramChannels = 0;
    EXPECT_DEATH(Machine machine(cfg), "zero DRAM channels");
}

TEST(ErrorsDeathTest, ZeroDramBandwidthPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig cfg = MachineConfig::tiny();
    cfg.dramBytesPerCycle = 0;
    EXPECT_DEATH(Machine machine(cfg), "zero DRAM bandwidth");
}

TEST(ErrorsDeathTest, MalformedMachineEnvSpecIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ::setenv("SPMRT_MACHINE", "16x", 1);
            MachineConfig cfg = MachineConfig::fromEnv(MachineConfig{});
            (void)cfg;
        },
        "SPMRT_MACHINE");
}

TEST(MachineSpec, PresetsAndOverridesParse)
{
    MachineConfig cfg;
    std::string error;
    ASSERT_TRUE(MachineConfig::fromSpec("big256", cfg, error)) << error;
    EXPECT_EQ(cfg.numCores(), 256u);
    EXPECT_EQ(cfg.dramChannels, 2u);
    EXPECT_EQ(cfg.rucheY, 3u);

    ASSERT_TRUE(
        MachineConfig::fromSpec("16x16, rx=3, ry=2, llc=16, place=t, "
                                "ch=4, bw=20, spm=4096, win=8192",
                                cfg, error))
        << error;
    EXPECT_EQ(cfg.meshCols, 16u);
    EXPECT_EQ(cfg.meshRows, 16u);
    EXPECT_EQ(cfg.rucheY, 2u);
    EXPECT_EQ(cfg.llcBanks, 16u);
    EXPECT_EQ(cfg.llcPlacement, LlcPlacement::Top);
    EXPECT_EQ(cfg.dramChannels, 4u);
    EXPECT_EQ(cfg.dramBytesPerCycle, 20u);
    EXPECT_EQ(cfg.spmWindowBytes, 8192u);

    EXPECT_FALSE(MachineConfig::fromSpec("paper, bogus=1", cfg, error));
    EXPECT_FALSE(MachineConfig::fromSpec("notapreset", cfg, error));
    EXPECT_FALSE(MachineConfig::fromSpec("", cfg, error));
}

TEST(MachineSpec, EveryPresetValidatesAndRoundTripsGeometry)
{
    for (const MachineConfig &cfg :
         {MachineConfig::paper(), MachineConfig::tiny(),
          MachineConfig::small(), MachineConfig::big256(),
          MachineConfig::big1024()}) {
        cfg.validate();
        EXPECT_FALSE(cfg.geometry().empty());
    }
    // The paper default's canonical geometry string is part of the
    // BENCH_host_perf.json row identity; pin it.
    EXPECT_EQ(MachineConfig{}.geometry(),
              "16x8-rx3-ry0-llc32tb-d1x10-spm4096w4096");
}

TEST(BulkAccess, SpmToSpmCopyStaysLocal)
{
    Machine machine(MachineConfig::tiny());
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        uint64_t before = machine.mem().stats().dramLoads;
        uint8_t buffer[64] = {1, 2, 3};
        core.write(core.spmBase(), buffer, sizeof(buffer));
        core.read(core.spmBase(), buffer, sizeof(buffer));
        EXPECT_EQ(machine.mem().stats().dramLoads, before);
    });
}

} // namespace
} // namespace spmrt
