/**
 * @file
 * Unit tests for the simulation engine: coroutine scheduling, clock
 * ordering, determinism, and the guest Core API.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace spmrt {
namespace {

TEST(Engine, RunsAllBodies)
{
    Engine engine(4, 64 * 1024);
    std::vector<int> ran(4, 0);
    for (CoreId i = 0; i < 4; ++i)
        engine.setBody(i, [&ran, i] { ran[i] = 1; });
    engine.run();
    for (int flag : ran)
        EXPECT_EQ(flag, 1);
}

TEST(Engine, SyncPointOrdersByTimestamp)
{
    // Two cores interleave strictly by local time at sync points.
    Engine engine(2, 64 * 1024);
    std::vector<std::pair<CoreId, Cycles>> order;

    auto body = [&engine, &order](CoreId id, Cycles step) {
        return [&engine, &order, id, step] {
            for (int i = 0; i < 5; ++i) {
                engine.advance(id, step);
                engine.syncPoint(id);
                order.emplace_back(id, engine.time(id));
            }
        };
    };
    engine.setBody(0, body(0, 10));
    engine.setBody(1, body(1, 25));
    engine.run();

    for (size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(order[i - 1].second, order[i].second)
            << "sync point " << i << " ran out of timestamp order";
}

TEST(Engine, ReusableAcrossRuns)
{
    Engine engine(2, 64 * 1024);
    int counter = 0;
    for (int round = 0; round < 3; ++round) {
        for (CoreId i = 0; i < 2; ++i)
            engine.setBody(i, [&counter] { ++counter; });
        engine.run();
    }
    EXPECT_EQ(counter, 6);
}

TEST(Engine, ClocksPersistAcrossRuns)
{
    Engine engine(1, 64 * 1024);
    engine.setBody(0, [&engine] { engine.advance(0, 100); });
    engine.run();
    EXPECT_EQ(engine.time(0), 100u);
    engine.setBody(0, [&engine] { engine.advance(0, 50); });
    engine.run();
    EXPECT_EQ(engine.time(0), 150u);
}

TEST(Engine, DeepGuestRecursionFits)
{
    Engine engine(1, 256 * 1024);
    // Recursion with a real frame per level; 2000 levels must fit in the
    // coroutine's 256 KB host stack.
    struct Recur
    {
        static int
        go(int n)
        {
            volatile char pad[64] = {0};
            (void)pad;
            return n == 0 ? 0 : 1 + go(n - 1);
        }
    };
    int depth = 0;
    engine.setBody(0, [&depth] { depth = Recur::go(2000); });
    engine.run();
    EXPECT_EQ(depth, 2000);
}

TEST(Machine, TickAdvancesClockAndCounts)
{
    Machine machine(MachineConfig::tiny());
    machine.run([](Core &core) { core.tick(5, 3); });
    for (CoreId i = 0; i < machine.numCores(); ++i) {
        EXPECT_EQ(machine.engine().time(i), 5u);
        EXPECT_EQ(machine.core(i).stats().isa.instructions, 3u);
    }
}

TEST(Machine, LocalSpmRoundTrip)
{
    Machine machine(MachineConfig::tiny());
    machine.run([](Core &core) {
        Addr addr = core.spmBase();
        core.store<uint32_t>(addr, 0xdeadbeef + core.id());
        uint32_t value = core.load<uint32_t>(addr);
        SPMRT_ASSERT(value == 0xdeadbeef + core.id(), "bad SPM readback");
    });
    // Local SPM latency is 2 cycles; store + load must cost at least 4.
    EXPECT_GE(machine.engine().time(0), 4u);
}

TEST(Machine, RemoteSpmVisibleAndSlower)
{
    MachineConfig cfg = MachineConfig::tiny();
    Machine machine(cfg);
    auto &mem = machine.mem();
    // Core 7 is the far corner from core 0 in the 4x2 tiny mesh.
    Addr remote = mem.map().spmBase(7);
    mem.pokeAs<uint32_t>(remote, 777);

    Cycles local_cost = 0, remote_cost = 0;
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        Cycles t0 = core.now();
        (void)core.load<uint32_t>(core.spmBase());
        local_cost = core.now() - t0;
        t0 = core.now();
        uint32_t value = core.load<uint32_t>(remote);
        remote_cost = core.now() - t0;
        SPMRT_ASSERT(value == 777, "remote SPM load returned %u", value);
    });
    EXPECT_GT(remote_cost, local_cost);
}

TEST(Machine, DramSlowerThanSpm)
{
    Machine machine(MachineConfig::tiny());
    Addr dram = machine.dramAlloc(64);
    machine.mem().pokeAs<uint32_t>(dram, 41);

    Cycles spm_cost = 0, dram_cold = 0, dram_warm = 0;
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        Cycles t0 = core.now();
        (void)core.load<uint32_t>(core.spmBase());
        spm_cost = core.now() - t0;

        t0 = core.now();
        (void)core.load<uint32_t>(dram);
        dram_cold = core.now() - t0;

        t0 = core.now();
        (void)core.load<uint32_t>(dram);
        dram_warm = core.now() - t0;
    });
    EXPECT_GT(dram_cold, spm_cost);
    // The second access hits in the LLC and must be cheaper than the miss.
    EXPECT_LT(dram_warm, dram_cold);
    EXPECT_GT(dram_warm, spm_cost);
}

TEST(Machine, AmoAtomicAcrossCores)
{
    Machine machine(MachineConfig::tiny());
    Addr counter = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(counter, 0);

    constexpr int kIncrementsPerCore = 50;
    machine.run([&](Core &core) {
        for (int i = 0; i < kIncrementsPerCore; ++i)
            core.amoAdd(counter, 1);
    });
    uint32_t total = machine.mem().peekAs<uint32_t>(counter);
    EXPECT_EQ(total, machine.numCores() * kIncrementsPerCore);
}

TEST(Machine, AmoReturnsOldValue)
{
    Machine machine(MachineConfig::tiny());
    Addr cell = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(cell, 10);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        EXPECT_EQ(core.amoAdd(cell, 5), 10u);
        EXPECT_EQ(core.amo(cell, AmoOp::Swap, 99), 15u);
        EXPECT_EQ(core.load<uint32_t>(cell), 99u);
    });
}

TEST(Machine, FenceDrainsPostedStores)
{
    MachineConfig cfg = MachineConfig::tiny();
    Machine machine(cfg);
    Addr dram = machine.dramAlloc(4);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        Cycles t0 = core.now();
        core.store<uint32_t>(dram, 1); // posted: costs ~1 cycle
        Cycles posted = core.now() - t0;
        core.fence(); // must wait for the DRAM store to land
        Cycles fenced = core.now() - t0;
        EXPECT_LE(posted, 3u);
        EXPECT_GT(fenced, posted);
    });
}

TEST(Machine, BulkReadWriteMovesData)
{
    Machine machine(MachineConfig::tiny());
    Addr dram = machine.dramAlloc(256);
    std::vector<uint8_t> pattern(256);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint8_t>(i * 7 + 1);

    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        core.write(dram, pattern.data(), pattern.size());
        std::vector<uint8_t> readback(256, 0);
        core.read(dram, readback.data(), readback.size());
        EXPECT_EQ(readback, pattern);
    });
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto experiment = [] {
        Machine machine(MachineConfig::tiny());
        Addr counter = machine.dramAlloc(4);
        machine.run([&](Core &core) {
            for (int i = 0; i < 20; ++i) {
                uint32_t old_value = core.amoAdd(counter, 1);
                core.tick(1 + old_value % 3);
            }
        });
        return machine.engine().maxTime();
    };
    Cycles first = experiment();
    EXPECT_EQ(first, experiment());
    EXPECT_EQ(first, experiment());
}

TEST(Machine, PerCoreBodiesAndSyncClocks)
{
    Machine machine(MachineConfig::tiny());
    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    for (CoreId i = 0; i < machine.numCores(); ++i)
        bodies[i] = [i](Core &core) { core.tick(10 * (i + 1)); };
    Cycles elapsed = machine.runPerCore(bodies);
    EXPECT_EQ(elapsed, 10u * machine.numCores());
    machine.syncClocks();
    for (CoreId i = 0; i < machine.numCores(); ++i)
        EXPECT_EQ(machine.engine().time(i), elapsed);
}

} // namespace
} // namespace spmrt
