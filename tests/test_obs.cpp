/**
 * @file
 * Telemetry subsystem tests.
 *
 * The load-bearing property is cycle-neutrality: arming the tracer and
 * stat registry must not change the simulation. Fib, CilkSort, and UTS
 * are run twice — telemetry off and armed — and compared bit-identically
 * on result digest, final simulated time, context switches, and sync
 * points. The rest checks the trace-event schema (per-track monotonic
 * timestamps, balanced begin/end nesting), heatmap geometry against the
 * mesh, StatRegistry snapshots against the live counters, and the
 * tracer's bounded-buffer drop accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/env.hpp"
#include "obs/telemetry.hpp"
#include "runtime/ws_runtime.hpp"
#include "workloads/cilksort.hpp"
#include "workloads/fib.hpp"
#include "workloads/uts.hpp"

namespace spmrt {
namespace {

using namespace spmrt::workloads;

/** Everything that must be identical between armed and off runs. */
struct RunCapture
{
    uint64_t digest = 0;
    Cycles maxTime = 0;
    uint64_t switches = 0;
    uint64_t syncPoints = 0;
};

uint64_t
fnv1a(const std::vector<uint32_t> &values)
{
    uint64_t hash = 1469598103934665603ull;
    for (uint32_t value : values) {
        hash ^= value;
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Run one of the three reference workloads, optionally with telemetry. */
RunCapture
runWorkload(const std::string &name, bool armed,
            const MachineConfig &cfg = MachineConfig::tiny())
{
    Machine machine(cfg);
    if (armed)
        machine.armTelemetry();
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    RunCapture capture;
    if (name == "fib") {
        Addr out = machine.dramAlloc(8, 8);
        rt.run([&](TaskContext &tc) { fibKernel(tc, 11, out); });
        capture.digest =
            static_cast<uint64_t>(machine.mem().peekAs<int64_t>(out));
    } else if (name == "cilksort") {
        CilkSortData data = cilksortSetup(machine, 600, 900);
        rt.run([&](TaskContext &tc) { cilksortKernel(tc, data); });
        capture.digest = fnv1a(
            downloadArray<uint32_t>(machine, data.data, data.n));
    } else {
        UtsParams params = UtsParams::geometric(6, 2.2, 42);
        UtsData data = utsSetup(machine, params);
        rt.run([&](TaskContext &tc) { utsKernel(tc, data); });
        capture.digest = utsResult(machine, data);
    }
    capture.maxTime = machine.engine().maxTime();
    capture.switches = machine.engine().switchCount();
    capture.syncPoints = machine.engine().syncPointCount();
    return capture;
}

TEST(TelemetryNeutrality, ArmedRunsBitIdenticalToOff)
{
    for (const char *workload : {"fib", "cilksort", "uts"}) {
        RunCapture off = runWorkload(workload, false);
        RunCapture armed = runWorkload(workload, true);
        EXPECT_EQ(off.digest, armed.digest) << workload;
        EXPECT_EQ(off.maxTime, armed.maxTime) << workload;
        EXPECT_EQ(off.switches, armed.switches) << workload;
        EXPECT_EQ(off.syncPoints, armed.syncPoints) << workload;
    }
}

TEST(TelemetryNeutrality, WindowTelemetryArmedBitIdenticalToOff)
{
    // The window-telemetry counters are always counted; arming only
    // registers their addresses. So an armed windowed run must stay
    // bit-identical to an off one — and must count the same number of
    // windows, or the counters themselves perturbed the schedule.
    auto run = [](bool armed, RunCapture &capture) -> uint64_t {
        Machine machine(MachineConfig::tiny());
        machine.engine().setScheduler(SchedMode::Windowed);
        machine.engine().setShards(2);
        if (armed)
            machine.armTelemetry();
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        Addr out = machine.dramAlloc(8, 8);
        rt.run([&](TaskContext &tc) { fibKernel(tc, 11, out); });
        capture.digest =
            static_cast<uint64_t>(machine.mem().peekAs<int64_t>(out));
        capture.maxTime = machine.engine().maxTime();
        capture.switches = machine.engine().switchCount();
        capture.syncPoints = machine.engine().syncPointCount();
        return machine.engine().windowStats().windows;
    };
    RunCapture off, armed;
    const uint64_t off_windows = run(false, off);
    const uint64_t armed_windows = run(true, armed);
    EXPECT_GT(off_windows, 0u);
    EXPECT_EQ(off_windows, armed_windows);
    EXPECT_EQ(off.digest, armed.digest);
    EXPECT_EQ(off.maxTime, armed.maxTime);
    EXPECT_EQ(off.switches, armed.switches);
    EXPECT_EQ(off.syncPoints, armed.syncPoints);
}

TEST(TelemetryNeutrality, ReferenceSchedulerAlsoUnperturbed)
{
    auto run = [](bool armed) {
        Machine machine(MachineConfig::tiny());
        machine.engine().setReferenceScheduler(true);
        if (armed)
            machine.armTelemetry();
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        Addr out = machine.dramAlloc(8, 8);
        rt.run([&](TaskContext &tc) { fibKernel(tc, 10, out); });
        return std::make_tuple(machine.mem().peekAs<int64_t>(out),
                               machine.engine().maxTime(),
                               machine.engine().switchCount());
    };
    EXPECT_EQ(run(false), run(true));
}

#if SPMRT_TELEMETRY_ENABLED

/** A 16-core machine, the acceptance scenario for Perfetto traces. */
MachineConfig
sixteenCores()
{
    MachineConfig cfg;
    cfg.meshCols = 4;
    cfg.meshRows = 4;
    cfg.llcBanks = 8;
    cfg.llcSetsPerBank = 32;
    cfg.dramBytes = 128ull * 1024 * 1024;
    return cfg;
}

TEST(TraceSchema, CilkSortTimelineWellFormed)
{
    Machine machine(sixteenCores());
    obs::Telemetry *telemetry = machine.armTelemetry();
    ASSERT_NE(telemetry, nullptr);
    uint64_t switches_at_arm = machine.engine().switchCount();

    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    CilkSortData data = cilksortSetup(machine, 800, 7);
    rt.run([&](TaskContext &tc) { cilksortKernel(tc, data); });

    const std::vector<obs::TraceEvent> &events =
        telemetry->tracer.events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(telemetry->tracer.dropped(), 0u);

    // Per-track timestamps must be monotonic in emission order for
    // B/E/i events (X spans on the fault track are plan-install-time
    // and exempt), and begin/end must nest with matching names.
    std::map<uint32_t, Cycles> last_ts;
    std::map<uint32_t, std::vector<const char *>> open;
    uint64_t switch_events = 0;
    for (const obs::TraceEvent &event : events) {
        ASSERT_NE(event.name, nullptr);
        if (event.phase == 'X')
            continue;
        auto it = last_ts.find(event.track);
        if (it != last_ts.end())
            EXPECT_GE(event.ts, it->second)
                << "track " << event.track << " event " << event.name;
        last_ts[event.track] = event.ts;
        if (event.phase == 'B') {
            open[event.track].push_back(event.name);
        } else if (event.phase == 'E') {
            ASSERT_FALSE(open[event.track].empty())
                << "unbalanced end on track " << event.track;
            EXPECT_STREQ(open[event.track].back(), event.name);
            open[event.track].pop_back();
        }
        if (event.category == obs::kTraceSwitch)
            ++switch_events;
        EXPECT_LT(event.track, machine.config().numCores());
    }
    for (const auto &[track, stack] : open)
        EXPECT_TRUE(stack.empty()) << "unclosed begin on track " << track;

    // One switch instant per dispatch since arming.
    EXPECT_EQ(switch_events,
              machine.engine().switchCount() - switches_at_arm);

    // The serialized form is one JSON object per event plus metadata.
    std::string json = telemetry->tracer.chromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"spmrt-trace-v1\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);

    // CI's trace-smoke job points SPMRT_TRACE_OUT at a scratch path and
    // validates the file with tools/check_trace.py.
    std::string out = env::stringValue("SPMRT_TRACE_OUT");
    if (!out.empty())
        telemetry->tracer.writeChromeJson(out.c_str());
}

TEST(TraceSchema, FaultWindowsLandOnFaultTrack)
{
    Machine machine(MachineConfig::tiny());
    obs::Telemetry *telemetry = machine.armTelemetry();
    ASSERT_NE(telemetry, nullptr);
    FaultPlan plan;
    plan.stallCore(1, 100, 2000, 7);
    machine.setFaultPlan(&plan);

    bool saw_window = false;
    for (const obs::TraceEvent &event : telemetry->tracer.events()) {
        if (event.phase != 'X')
            continue;
        saw_window = true;
        EXPECT_EQ(event.track, obs::kTraceFaultTrack);
        EXPECT_STREQ(event.name, "core_stall");
        EXPECT_EQ(event.ts, 100u);
        EXPECT_EQ(event.dur, 1900u);
    }
    EXPECT_TRUE(saw_window);
    machine.setFaultPlan(nullptr);
}

TEST(Heatmaps, GeometryMatchesMesh)
{
    MachineConfig cfg = sixteenCores();
    Machine machine(cfg);
    machine.armTelemetry();
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    CilkSortData data = cilksortSetup(machine, 400, 3);
    rt.run([&](TaskContext &tc) { cilksortKernel(tc, data); });

    const MeshNoc &noc = machine.mem().noc();
    obs::Heatmap links = noc.linkHeatmap();
    EXPECT_EQ(links.labels.size(), noc.numLinks());
    EXPECT_EQ(links.rows.size(), noc.numLinks());
    uint64_t flits = 0;
    for (size_t i = 0; i < noc.numLinks(); ++i) {
        uint32_t x = 0, y = 0, dir = 0;
        noc.linkCoords(i, x, y, dir);
        EXPECT_LT(x, cfg.meshCols);
        EXPECT_LT(y, cfg.meshRows);
        EXPECT_LT(dir, 8u); // E/W/N/S + ruche X and Y expresses
        ASSERT_EQ(links.rows[i].size(), links.columns.size());
        EXPECT_EQ(links.rows[i][0], x);
        EXPECT_EQ(links.rows[i][1], y);
        EXPECT_EQ(links.rows[i][2], dir);
        flits += links.rows[i][3];
    }
    EXPECT_GT(flits, 0u) << "a cilksort run must move NoC traffic";

    const LlcModel &llc = machine.mem().llc();
    obs::Heatmap banks = llc.bankHeatmap();
    EXPECT_EQ(banks.rows.size(), llc.numBanks());
    uint64_t accesses = 0;
    for (const std::vector<uint64_t> &row : banks.rows) {
        ASSERT_EQ(row.size(), banks.columns.size());
        accesses += row[0];
        EXPECT_EQ(row[0], row[1] + row[2]); // accesses = hits + misses
    }
    EXPECT_GT(accesses, 0u);

    // CSV shape: header + one line per row, headed by the label column.
    std::string csv = links.csv();
    EXPECT_EQ(static_cast<size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              noc.numLinks() + 1);
    EXPECT_EQ(csv.rfind("link,x,y,dir,", 0), 0u);
}

TEST(StatRegistry, SnapshotsTrackLiveCounters)
{
    Machine machine(MachineConfig::tiny());
    obs::Telemetry *telemetry = machine.armTelemetry();
    ASSERT_NE(telemetry, nullptr);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr out = machine.dramAlloc(8, 8);
    rt.run([&](TaskContext &tc) { fibKernel(tc, 10, out); });

    obs::StatRegistry &stats = telemetry->stats;
    EXPECT_EQ(stats.value("core/000/isa/instructions"),
              machine.core(0).stats().isa.instructions);
    EXPECT_EQ(stats.value("engine/switches"),
              machine.engine().switchCount());
    EXPECT_EQ(stats.sum("core/", "/rt/tasks_executed"),
              machine.totalStat(&RuntimeStats::tasksExecuted));
    EXPECT_EQ(stats.sum("core/", "/isa/instructions"),
              machine.totalInstructions());
    EXPECT_GT(stats.value("mem/dram_loads"), 0u);

    std::string json = stats.json();
    EXPECT_NE(json.find("\"core/000/isa/instructions\""),
              std::string::npos);

    // Re-arming must not duplicate entries (add() replaces in place).
    size_t count = 0;
    stats.forEach([&](const std::string &, uint64_t) { ++count; });
    machine.armTelemetry();
    size_t count_after = 0;
    stats.forEach([&](const std::string &, uint64_t) { ++count_after; });
    EXPECT_EQ(count, count_after);
}

TEST(StatRegistry, WindowTelemetryTracksEngine)
{
    Machine machine(MachineConfig::tiny());
    machine.engine().setScheduler(SchedMode::Windowed);
    machine.engine().setShards(2);
    obs::Telemetry *telemetry = machine.armTelemetry();
    ASSERT_NE(telemetry, nullptr);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr out = machine.dramAlloc(8, 8);
    rt.run([&](TaskContext &tc) { fibKernel(tc, 11, out); });

    const obs::WindowStats &ws = machine.engine().windowStats();
    EXPECT_GT(ws.windows, 0u);
    EXPECT_GT(ws.admitted, 0u);
    obs::StatRegistry &stats = telemetry->stats;
    EXPECT_EQ(stats.value("engine/win/windows"), ws.windows);
    EXPECT_EQ(stats.value("engine/win/admitted"), ws.admitted);
    EXPECT_EQ(stats.value("engine/win/barrier_ns"), ws.barrierNs);
    EXPECT_EQ(stats.value("engine/win/shard/00/admitted"),
              ws.shardAdmitted[0]);

    // Every window lands in exactly one length bucket.
    uint64_t bucketed = 0;
    for (uint64_t b : ws.winLenBuckets)
        bucketed += b;
    EXPECT_EQ(bucketed, ws.windows);

    // The JSON export carries the schema tag and per-shard rows (the
    // bench harness writes it as the CI telemetry artifact).
    std::string json = ws.json();
    EXPECT_NE(json.find("\"spmrt-window-telemetry-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"win_len_buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"shards\""), std::string::npos);
}

TEST(Tracer, BoundedBufferCountsDrops)
{
    obs::Tracer tracer(obs::kTraceAll, 4);
    for (uint32_t i = 0; i < 6; ++i)
        tracer.instant(obs::kTraceTask, 0, i, "tick");
    EXPECT_EQ(tracer.events().size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    tracer.clear();
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, CategoryMaskFilters)
{
    obs::Tracer tracer(obs::kTraceTask);
    tracer.instant(obs::kTraceSteal, 0, 1, "steal_attempt");
    tracer.instant(obs::kTraceTask, 0, 2, "task");
    EXPECT_EQ(tracer.events().size(), 1u);
    EXPECT_STREQ(tracer.events()[0].name, "task");
}

#else // !SPMRT_TELEMETRY_ENABLED

TEST(Telemetry, CompiledOutArmReturnsNull)
{
    Machine machine(MachineConfig::tiny());
    EXPECT_EQ(machine.armTelemetry(), nullptr);
    EXPECT_EQ(machine.telemetry(), nullptr);
}

#endif // SPMRT_TELEMETRY_ENABLED

} // namespace
} // namespace spmrt
