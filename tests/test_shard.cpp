/**
 * @file
 * Property tests for the host-parallel engine's shard layer.
 *
 * Three strata:
 *  - ShardPlan partition invariants (coverage, contiguity, balance,
 *    clamping) over a sweep of core/shard combinations;
 *  - the closed-form routeLatency and the brute-force lookahead, each
 *    cross-checked against an independent oracle that literally re-walks
 *    the router's dimension-ordered hop loop (noc.cpp), plus a seeded
 *    two-shard windowed-execution model showing no cross-shard event can
 *    become visible earlier than the lookahead bound;
 *  - the engine itself under shards: identical interleavings, switch and
 *    syncPoint counts, block/unblock, and mixed sequential/parallel runs
 *    on a reused engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace spmrt {
namespace {

// ---------------------------------------------------------------------
// Partition invariants.

TEST(ShardPlan, EveryCoreInExactlyOneShard)
{
    for (uint32_t cores : {1u, 2u, 7u, 8u, 32u, 128u, 129u}) {
        for (uint32_t shards : {1u, 2u, 3u, 4u, 8u, 16u}) {
            ShardPlan plan(cores, shards);
            std::vector<uint32_t> owners(cores, 0);
            for (uint32_t s = 0; s < plan.numShards(); ++s)
                for (CoreId id = plan.shardBegin(s); id < plan.shardEnd(s);
                     ++id)
                    ++owners[id];
            for (CoreId id = 0; id < cores; ++id) {
                EXPECT_EQ(owners[id], 1u)
                    << "core " << id << " covered " << owners[id]
                    << " times under " << cores << "/" << shards;
                EXPECT_GE(id, plan.shardBegin(plan.shardOf(id)));
                EXPECT_LT(id, plan.shardEnd(plan.shardOf(id)));
            }
        }
    }
}

TEST(ShardPlan, ContiguousAndBalanced)
{
    for (uint32_t cores : {4u, 31u, 32u, 33u, 128u}) {
        for (uint32_t shards : {2u, 3u, 4u, 5u, 8u}) {
            ShardPlan plan(cores, shards);
            uint32_t min_size = cores, max_size = 0;
            CoreId expect_begin = 0;
            for (uint32_t s = 0; s < plan.numShards(); ++s) {
                EXPECT_EQ(plan.shardBegin(s), expect_begin)
                    << "shard " << s << " not contiguous";
                expect_begin = plan.shardEnd(s);
                min_size = std::min(min_size, plan.shardSize(s));
                max_size = std::max(max_size, plan.shardSize(s));
            }
            EXPECT_EQ(expect_begin, cores);
            EXPECT_LE(max_size - min_size, 1u)
                << "unbalanced partition under " << cores << "/" << shards;
        }
    }
}

TEST(ShardPlan, ClampsShardsToCores)
{
    ShardPlan plan(3, 8);
    EXPECT_EQ(plan.numShards(), 3u);
    for (uint32_t s = 0; s < 3; ++s)
        EXPECT_EQ(plan.shardSize(s), 1u);
}

// ---------------------------------------------------------------------
// Route-latency oracle: literally re-walk the router's hop loops
// (MeshNoc::buildRoute in noc.cpp) and charge linkLatency per hop
// chosen. Deliberately written as the router writes it — greedy ruche
// express while the remaining X distance allows — so a change to either
// side of the equivalence breaks this test.

Cycles
walkLatencyOracle(const MachineConfig &cfg, uint32_t x, int32_t y,
                  uint32_t dst_x, int32_t dst_y)
{
    Cycles t = 0;
    while (x != dst_x) {
        uint32_t dist = x < dst_x ? dst_x - x : x - dst_x;
        bool east = x < dst_x;
        if (cfg.rucheX > 1 && dist >= cfg.rucheX)
            x = east ? x + cfg.rucheX : x - cfg.rucheX;
        else
            x = east ? x + 1 : x - 1;
        t += cfg.linkLatency;
    }
    while (y != dst_y) {
        // Y express links exist only between core-array rows: the hop is
        // taken only when the landing row stays inside the array, and
        // the exit hop toward an LLC row is always a single link —
        // exactly the router's rule (noc.cpp).
        bool north = y > dst_y;
        uint32_t dist = static_cast<uint32_t>(north ? y - dst_y : dst_y - y);
        int32_t landing = north ? y - static_cast<int32_t>(cfg.rucheY)
                                : y + static_cast<int32_t>(cfg.rucheY);
        if (cfg.rucheY > 1 && dist >= cfg.rucheY && landing >= 0 &&
            landing < static_cast<int32_t>(cfg.meshRows))
            y = landing;
        else
            y += north ? -1 : 1;
        t += cfg.linkLatency;
    }
    return t;
}

std::vector<MachineConfig>
meshSweep()
{
    std::vector<MachineConfig> sweep;
    for (uint32_t ruche : {1u, 2u, 3u, 5u}) {
        for (Cycles link : {Cycles(1), Cycles(2)}) {
            MachineConfig tiny = MachineConfig::tiny();
            if (ruche < tiny.meshCols) { // validate(): factor < width
                tiny.rucheX = ruche;
                tiny.linkLatency = link;
                sweep.push_back(tiny);
            }
            MachineConfig small = MachineConfig::small();
            small.rucheX = ruche;
            small.linkLatency = link;
            sweep.push_back(small);
        }
    }
    MachineConfig paper; // the default 16x8 mesh with ruche 3
    sweep.push_back(paper);
    // Free-geometry shapes: Y ruche (including factors that strand a
    // remainder against the edge rows), one-sided LLC placement, a tall
    // mesh where Y express hops dominate, and the big256 preset shape.
    for (uint32_t ruche_y : {2u, 3u}) {
        MachineConfig small = MachineConfig::small(); // 8x4
        small.rucheY = ruche_y;
        sweep.push_back(small);
    }
    MachineConfig tall = MachineConfig::tiny();
    tall.meshCols = 2;
    tall.meshRows = 32;
    tall.rucheX = 0;
    tall.rucheY = 5;
    sweep.push_back(tall);
    MachineConfig top_only = MachineConfig::small();
    top_only.llcPlacement = LlcPlacement::Top;
    sweep.push_back(top_only);
    MachineConfig bottom_only = MachineConfig::small();
    bottom_only.llcPlacement = LlcPlacement::Bottom;
    bottom_only.rucheY = 2;
    sweep.push_back(bottom_only);
    sweep.push_back(MachineConfig::big256()); // 16x16, rx3, ry3
    for (const MachineConfig &cfg : sweep)
        cfg.validate();
    return sweep;
}

TEST(ShardRoute, ClosedFormMatchesRouterWalk)
{
    for (const MachineConfig &cfg : meshSweep()) {
        // All core-to-core pairs plus both LLC rows (y = -1, meshRows).
        std::vector<int32_t> rows;
        rows.push_back(-1);
        for (uint32_t y = 0; y < cfg.meshRows; ++y)
            rows.push_back(static_cast<int32_t>(y));
        rows.push_back(static_cast<int32_t>(cfg.meshRows));
        for (uint32_t sx = 0; sx < cfg.meshCols; ++sx)
            for (uint32_t sy = 0; sy < cfg.meshRows; ++sy)
                for (uint32_t dx = 0; dx < cfg.meshCols; ++dx)
                    for (int32_t dy : rows)
                        EXPECT_EQ(
                            ShardPlan::routeLatency(
                                cfg, sx, static_cast<int32_t>(sy), dx, dy),
                            walkLatencyOracle(
                                cfg, sx, static_cast<int32_t>(sy), dx, dy))
                            << "ruche " << cfg.rucheX << " link "
                            << cfg.linkLatency << " (" << sx << "," << sy
                            << ") -> (" << dx << "," << dy << ")";
    }
}

// Independent lookahead oracle: min walk-latency over every cross-shard
// core pair and every core-to-LLC-bank route, using the re-walk oracle
// rather than the closed form.
Cycles
lookaheadOracle(const MachineConfig &cfg, const ShardPlan &plan)
{
    Cycles best = ~Cycles(0);
    for (CoreId src = 0; src < cfg.numCores(); ++src) {
        for (CoreId dst = 0; dst < cfg.numCores(); ++dst) {
            if (plan.shardOf(src) == plan.shardOf(dst))
                continue;
            best = std::min(
                best, walkLatencyOracle(
                          cfg, cfg.coreX(src),
                          static_cast<int32_t>(cfg.coreY(src)),
                          cfg.coreX(dst),
                          static_cast<int32_t>(cfg.coreY(dst))));
        }
        for (uint32_t bank = 0; bank < cfg.llcBanks; ++bank)
            best = std::min(
                best,
                walkLatencyOracle(cfg, cfg.coreX(src),
                                  static_cast<int32_t>(cfg.coreY(src)),
                                  cfg.llcBankX(bank), cfg.llcBankY(bank)));
    }
    return best;
}

TEST(ShardLookahead, MatchesBruteForceOracleAcrossMeshes)
{
    for (const MachineConfig &cfg : meshSweep()) {
        for (uint32_t shards : {2u, 3u, 4u, 8u}) {
            ShardPlan plan(cfg.numCores(), shards);
            if (plan.numShards() < 2)
                continue;
            EXPECT_EQ(plan.lookahead(cfg), lookaheadOracle(cfg, plan))
                << cfg.meshCols << "x" << cfg.meshRows << " ruche "
                << cfg.rucheX << " shards " << shards;
        }
    }
}

TEST(ShardLookahead, SingleShardHasNoCrossRoute)
{
    MachineConfig cfg = MachineConfig::tiny();
    ShardPlan plan(cfg.numCores(), 1);
    EXPECT_EQ(plan.lookahead(cfg), ShardPlan::kNoLookahead);
}

TEST(ShardLookahead, PaperMeshDegeneratesToOneLink)
{
    // Row-banded shards on the 16x8 / ruche-3 mesh put vertically
    // adjacent cores in different shards, so the lookahead collapses to
    // a single link latency — the documented reason the engine passes a
    // token instead of free-running windows (DESIGN.md Sec. 14).
    MachineConfig cfg;
    ShardPlan plan(cfg.numCores(), 4);
    EXPECT_EQ(plan.lookahead(cfg), cfg.linkLatency);
}

// ---------------------------------------------------------------------
// Seeded two-shard windowed-execution model. A conservative-PDES
// executive may only advance a shard to local time T when every event
// the other shard could still send it is stamped >= T; with lookahead L
// and the peer's clock at P, the window bound is P + L. The model runs
// two shard clocks through seeded random event exchanges and asserts
// that no delivery lands inside the receiver's supposedly-safe window —
// i.e. every cross-shard event arrives no earlier than send + L, so a
// window that only admits times < peer + L can never miss an event.

TEST(ShardWindowModel, NoEventBeatsTheLookaheadBound)
{
    for (uint64_t seed = 0; seed < 16; ++seed) {
        MachineConfig cfg = MachineConfig::small();
        ShardPlan plan(cfg.numCores(), 2);
        const Cycles lookahead = plan.lookahead(cfg);
        ASSERT_GT(lookahead, 0u);

        Xoshiro256StarStar rng(hash64(seed ^ 0x5a4dull));
        Cycles clock[2] = {0, 0};
        for (int step = 0; step < 2000; ++step) {
            // Advance a random shard's clock, then send an event from a
            // random core of that shard to a random core of the other.
            uint32_t src_shard = static_cast<uint32_t>(rng.next() & 1);
            uint32_t dst_shard = 1 - src_shard;
            clock[src_shard] += rng.next() % 7;

            auto pick = [&](uint32_t shard) {
                uint32_t size = plan.shardSize(shard);
                return static_cast<CoreId>(plan.shardBegin(shard) +
                                           rng.next() % size);
            };
            CoreId src = pick(src_shard);
            CoreId dst = pick(dst_shard);
            Cycles sent = clock[src_shard];
            Cycles arrives =
                sent + ShardPlan::routeLatency(
                           cfg, cfg.coreX(src),
                           static_cast<int32_t>(cfg.coreY(src)),
                           cfg.coreX(dst),
                           static_cast<int32_t>(cfg.coreY(dst)));

            // The receiver may have executed up to (but not including)
            // sender_clock + lookahead; the event must not land in that
            // already-executed region.
            Cycles safe_window_end = sent + lookahead;
            EXPECT_GE(arrives, safe_window_end)
                << "seed " << seed << " step " << step << ": event from "
                << src << " to " << dst << " sent at " << sent
                << " arrives at " << arrives
                << ", inside the executed window ending at "
                << safe_window_end;
        }
    }
}

// ---------------------------------------------------------------------
// Engine under shards: the sharded scheduler must replay the sequential
// engine's decisions exactly.

struct EngineRun
{
    std::vector<std::pair<CoreId, Cycles>> order;
    std::vector<Cycles> clocks;
    uint64_t switches = 0;
    uint64_t syncPoints = 0;
};

// Interleaved counters with uneven strides: every syncPoint admission
// is order-sensitive, so any scheduling divergence shows up in `order`.
// Pinned to the token scheduler: recording a global order from guest
// bodies requires serialized guests, which only the grant token
// provides (the windowed engine runs guests concurrently and gets its
// order checked through the ShardMailbox commit log instead).
EngineRun
runCounters(uint32_t cores, uint32_t shards, int steps)
{
    Engine engine(cores, 64 * 1024);
    engine.setScheduler(SchedMode::Token);
    engine.setShards(shards);
    EngineRun out;
    for (CoreId i = 0; i < cores; ++i) {
        engine.setBody(i, [&engine, &out, i, steps] {
            for (int step = 0; step < steps; ++step) {
                engine.advance(i, 3 + (i * 7 + step) % 11);
                engine.syncPoint(i);
                out.order.emplace_back(i, engine.time(i));
            }
        });
    }
    engine.run();
    for (CoreId i = 0; i < cores; ++i)
        out.clocks.push_back(engine.time(i));
    out.switches = engine.switchCount();
    out.syncPoints = engine.syncPointCount();
    return out;
}

TEST(ShardEngine, InterleavingIdenticalAcrossShardCounts)
{
    EngineRun sequential = runCounters(8, 1, 200);
    for (uint32_t shards : {2u, 4u, 8u}) {
        EngineRun sharded = runCounters(8, shards, 200);
        EXPECT_EQ(sharded.order, sequential.order) << shards << " shards";
        EXPECT_EQ(sharded.clocks, sequential.clocks) << shards << " shards";
        EXPECT_EQ(sharded.switches, sequential.switches)
            << shards << " shards";
        EXPECT_EQ(sharded.syncPoints, sequential.syncPoints)
            << shards << " shards";
    }
}

TEST(ShardEngine, PerturbedScheduleReplaysUnderShards)
{
    // Perturbation consumes the scheduler RNG at each decision; byte
    // identity under shards requires the sharded engine to make the
    // decisions in the same order, consuming the same draws.
    for (uint64_t seed : {1ull, 42ull}) {
        auto run = [&](uint32_t shards) {
            Engine engine(6, 64 * 1024);
            // Token pin as in runCounters; perturbation would force the
            // fallback anyway, but the test should not depend on it.
            engine.setScheduler(SchedMode::Token);
            engine.setShards(shards);
            engine.perturbSchedule(seed, 4);
            EngineRun out;
            for (CoreId i = 0; i < 6; ++i) {
                engine.setBody(i, [&engine, &out, i] {
                    for (int step = 0; step < 120; ++step) {
                        engine.advance(i, 2 + (i + step) % 5);
                        engine.syncPoint(i);
                        out.order.emplace_back(i, engine.time(i));
                    }
                });
            }
            engine.run();
            out.switches = engine.switchCount();
            out.syncPoints = engine.syncPointCount();
            return out;
        };
        EngineRun sequential = run(1);
        EngineRun sharded = run(4);
        EXPECT_EQ(sharded.order, sequential.order) << "seed " << seed;
        EXPECT_EQ(sharded.switches, sequential.switches) << "seed " << seed;
        EXPECT_EQ(sharded.syncPoints, sequential.syncPoints)
            << "seed " << seed;
    }
}

TEST(ShardEngine, BlockUnblockCrossesShards)
{
    // Core 0 (shard 0) parks; core N-1 (last shard) wakes it after
    // advancing. The wake executes under the token on the last shard's
    // thread, so the unblock path must be shard-agnostic.
    auto run = [&](uint32_t shards) {
        constexpr uint32_t kCores = 4;
        Engine engine(kCores, 64 * 1024);
        engine.setShards(shards);
        Cycles woken_at = 0;
        engine.setBody(0, [&engine, &woken_at] {
            engine.advance(0, 1);
            engine.syncPoint(0);
            engine.block(0);
            woken_at = engine.time(0);
        });
        for (CoreId i = 1; i < kCores; ++i) {
            engine.setBody(i, [&engine, i] {
                engine.advance(i, 10 * i);
                engine.syncPoint(i);
                if (i == kCores - 1)
                    engine.unblock(0, engine.time(i) + 5);
            });
        }
        engine.run();
        return woken_at;
    };
    Cycles sequential = run(1);
    EXPECT_EQ(sequential, 35u); // 10 * 3 + 5
    EXPECT_EQ(run(2), sequential);
    EXPECT_EQ(run(4), sequential);
}

TEST(ShardEngine, ReusableAcrossModeChanges)
{
    // One engine, alternating sequential, token, and windowed runs:
    // coroutine stacks parked under one scheduler must resume correctly
    // under another, and clocks persist across runs in every mode.
    // Counters are per core — windowed guests run concurrently, so
    // bodies may not share host state.
    Engine engine(4, 64 * 1024);
    int counters[4] = {0, 0, 0, 0};
    auto arm = [&] {
        for (CoreId i = 0; i < 4; ++i)
            engine.setBody(i, [&engine, &counters, i] {
                engine.advance(i, 10);
                engine.syncPoint(i);
                ++counters[i];
            });
    };
    const std::pair<SchedMode, uint32_t> runs[] = {
        {SchedMode::Fast, 1},     {SchedMode::Token, 4},
        {SchedMode::Windowed, 2}, {SchedMode::Fast, 1},
        {SchedMode::Windowed, 4},
    };
    for (const auto &[mode, shards] : runs) {
        engine.setScheduler(mode);
        engine.setShards(shards);
        arm();
        engine.run();
    }
    for (CoreId i = 0; i < 4; ++i) {
        EXPECT_EQ(counters[i], 5) << "core " << i;
        EXPECT_EQ(engine.time(i), 50u) << "core " << i;
    }
}

TEST(ShardEngine, MoreShardsThanCoresRunsSequential)
{
    Engine engine(2, 64 * 1024);
    engine.setShards(8); // plan clamps to 2; still a valid parallel run
    int ran[2] = {0, 0}; // per core: bodies may not share host state
    for (CoreId i = 0; i < 2; ++i)
        engine.setBody(i, [&ran, i] { ++ran[i]; });
    engine.run();
    EXPECT_EQ(ran[0] + ran[1], 2);
}

TEST(ShardEngine, StaleGrantsFromPreviousRunsAreDiscarded)
{
    // Regression for the ShardExec reuse hazard: shutdown posts a stop
    // grant to every shard, but a shard loop that exits on the relaxed
    // runDone_ fast path never consumes its stop, latching it in the
    // reused mailbox. Without generation tagging, the next run's
    // takeGrant would consume the leftover stop and kill that shard's
    // loop before it ran a single guest — hanging the run (the token
    // eventually reaches the dead shard and is never consumed) or
    // skipping its cores. Back-to-back parallel runs on one engine hit
    // the latching path with high probability; every run must still
    // execute every core. Token pin: this targets the grant mailboxes
    // (the windowed barrier reuses ShardExec and is covered elsewhere),
    // and the shared counter needs serialized guests.
    constexpr uint32_t kCores = 8;
    Engine engine(kCores, 64 * 1024);
    engine.setScheduler(SchedMode::Token);
    engine.setShards(4);
    int counter = 0;
    constexpr int kRuns = 20;
    for (int run = 0; run < kRuns; ++run) {
        for (CoreId i = 0; i < kCores; ++i)
            engine.setBody(i, [&engine, &counter, i] {
                engine.advance(i, 2 + i % 3);
                engine.syncPoint(i);
                ++counter;
            });
        engine.run();
        ASSERT_EQ(counter, static_cast<int>(kCores) * (run + 1))
            << "run " << run << " skipped cores";
    }
    EXPECT_EQ(counter, static_cast<int>(kCores) * kRuns);
}

// ---------------------------------------------------------------------
// Mailbox-merge property: seeded random cross-shard traffic driven
// through the engine's remote-op capture protocol — the exact call
// sequence Core makes (issue-gate syncPoint, remoteInlineOk probe,
// noteCapture / scheduleRemoteOp, Commit and Drain parks, commitWake,
// completion-gate syncPoint) — against a deliberately order-sensitive
// mock server. The server hands out completion times FIFO from one
// busy-until register, so swapping any two commits changes every later
// done time: the windowed scheduler's mailbox drain must replay the
// literal sequential commit order or the logs diverge loudly and
// permanently.

constexpr Cycles kTrafficCommitDelta = 2;

struct TrafficShared
{
    Cycles serverFree = 0; ///< FIFO server: busy-until watermark
    /** (issuer, commit, done) in host execution order. */
    std::vector<std::tuple<CoreId, Cycles, Cycles>> log;
    uint64_t inlined = 0; ///< issue-site commits (never on shard threads)
};

class TrafficCore final : public CoreOpSink
{
  public:
    void
    init(Engine &engine, TrafficShared &shared, CoreId id)
    {
        engine_ = &engine;
        shared_ = &shared;
        id_ = id;
        engine.setOpSink(id, this);
    }

    Cycles
    executeHeadOp() override
    {
        Op op = fifo_.front();
        fifo_.pop_front();
        Cycles done = serve(op);
        if (op.blocking)
            engine_->commitWake(id_, done);
        else if (--pendingPosted_ == 0 && fenceWaiting_)
            engine_->commitWake(id_, 0);
        return fifo_.empty() ? Engine::kNoPendingOp : fifo_.front().commit;
    }

    /** One globally visible op, blocking (load/AMO) or posted (store). */
    void
    issue(bool blocking, Cycles service)
    {
        engine_->syncPoint(id_); // issue gate, as in Core
        const Cycles commit = engine_->time(id_) + kTrafficCommitDelta;
        Op op{commit, service, blocking};
        if (engine_->remoteInlineOk(id_, commit)) {
            ++shared_->inlined;
            Cycles done = serve(op);
            if (blocking) {
                engine_->advanceTo(id_, done);
                engine_->syncPoint(id_); // completion gate, as in Core
            } else {
                engine_->advance(id_, 1); // posted issue cost
            }
            return;
        }
        ++captured_;
        const bool was_empty = fifo_.empty();
        fifo_.push_back(op);
        engine_->noteCapture(id_, commit, blocking);
        if (was_empty)
            engine_->scheduleRemoteOp(id_, commit);
        if (blocking) {
            engine_->block(id_, Engine::ParkKind::Commit);
            engine_->syncPoint(id_); // completion gate after the wake
        } else {
            ++pendingPosted_;
            engine_->advance(id_, 1);
        }
    }

    /** Drain posted stores, as Core::fence (minus the drain-time jump). */
    void
    fence()
    {
        if (pendingPosted_ != 0) {
            fenceWaiting_ = true;
            engine_->block(id_, Engine::ParkKind::Drain);
            fenceWaiting_ = false;
        }
        engine_->syncPoint(id_); // completion gate, as in Core::fence
    }

    uint64_t captured() const { return captured_; }

  private:
    struct Op
    {
        Cycles commit;
        Cycles service;
        bool blocking;
    };

    Cycles
    serve(const Op &op)
    {
        Cycles start = std::max(shared_->serverFree, op.commit);
        Cycles done = start + op.service;
        shared_->serverFree = done;
        shared_->log.emplace_back(id_, op.commit, done);
        return done;
    }

    Engine *engine_ = nullptr;
    TrafficShared *shared_ = nullptr;
    CoreId id_ = 0;
    std::deque<Op> fifo_; ///< issue-order commit FIFO, as in Core
    uint32_t pendingPosted_ = 0;
    bool fenceWaiting_ = false;
    uint64_t captured_ = 0;
};

struct TrafficResult
{
    std::vector<std::tuple<CoreId, Cycles, Cycles>> log;
    std::vector<Cycles> clocks;
    uint64_t switches = 0;
    uint64_t syncPoints = 0;
    uint64_t inlined = 0;
    uint64_t captured = 0;
};

struct TrafficOpts
{
    bool batch = true;      ///< batched admission (the default protocol)
    bool rebalance = false; ///< re-plan boundaries from the gate profile
    int runs = 1;           ///< back-to-back runs on the same engine
    std::vector<uint64_t> profile; ///< primed per-core gate weights
};

TrafficResult
runTraffic(uint64_t seed, SchedMode mode, uint32_t shards,
           TrafficOpts opts = {})
{
    constexpr uint32_t kCores = 8;
    constexpr int kSteps = 250;
    Engine engine(kCores, 64 * 1024);
    engine.setScheduler(mode);
    engine.setShards(shards);
    engine.setWindowBatching(opts.batch);
    engine.setShardRebalance(opts.rebalance);
    if (!opts.profile.empty())
        engine.primeShardProfile(opts.profile);
    TrafficShared shared;
    std::vector<TrafficCore> cores(kCores);
    for (CoreId i = 0; i < kCores; ++i)
        cores[i].init(engine, shared, i);
    for (int run = 0; run < opts.runs; ++run) {
        for (CoreId i = 0; i < kCores; ++i) {
            engine.setBody(i, [&engine, &cores, i, seed, run] {
                // Per-core stream: consumed only by this core's body, so
                // the draw sequence is interleaving-independent.
                Xoshiro256StarStar rng(
                    hash64(seed * 8191 + i + run * 131071));
                for (int step = 0; step < kSteps; ++step) {
                    engine.advance(i, 1 + rng.next() % 13);
                    engine.syncPoint(i);
                    uint64_t roll = rng.next() % 10;
                    Cycles service = 1 + rng.next() % 6;
                    if (roll < 4)
                        cores[i].issue(true, service);
                    else if (roll < 7)
                        cores[i].issue(false, service);
                    else if (roll == 7)
                        cores[i].fence();
                    // else: pure compute segment
                }
                cores[i].fence(); // task-boundary drain before finishing
            });
        }
        engine.run();
    }
    TrafficResult out;
    out.log = std::move(shared.log);
    for (CoreId i = 0; i < kCores; ++i)
        out.clocks.push_back(engine.time(i));
    out.switches = engine.switchCount();
    out.syncPoints = engine.syncPointCount();
    out.inlined = shared.inlined;
    for (const TrafficCore &core : cores)
        out.captured += core.captured();
    return out;
}

TEST(ShardMailbox, WindowedDrainReplaysSequentialCommitOrder)
{
    for (uint64_t seed = 0; seed < 6; ++seed) {
        TrafficResult oracle = runTraffic(seed, SchedMode::Fast, 1);
        ASSERT_FALSE(oracle.log.empty()) << "seed " << seed;
        // The oracle must exercise both commit paths, or the run says
        // nothing about merging inline and drained traffic.
        EXPECT_GT(oracle.inlined, 0u) << "seed " << seed;
        EXPECT_GT(oracle.captured, 0u) << "seed " << seed;
        for (uint32_t shards : {2u, 4u, 8u}) {
            TrafficResult windowed =
                runTraffic(seed, SchedMode::Windowed, shards);
            EXPECT_EQ(windowed.log, oracle.log)
                << shards << " shards, seed " << seed;
            EXPECT_EQ(windowed.clocks, oracle.clocks)
                << shards << " shards, seed " << seed;
            EXPECT_EQ(windowed.switches, oracle.switches)
                << shards << " shards, seed " << seed;
            EXPECT_EQ(windowed.syncPoints, oracle.syncPoints)
                << shards << " shards, seed " << seed;
            // In-window shards have no global view, so the issue site
            // may never commit inline: the drain is the only path.
            EXPECT_EQ(windowed.inlined, 0u)
                << shards << " shards, seed " << seed;
        }
        // The token scaffold must agree with both.
        TrafficResult token = runTraffic(seed, SchedMode::Token, 4);
        EXPECT_EQ(token.log, oracle.log) << "token, seed " << seed;
        EXPECT_EQ(token.clocks, oracle.clocks) << "token, seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Batched admission: the cached-horizon fast path must admit exactly
// the same event set, in the same key order, as the one-at-a-time
// protocol (which publishes the promise at every gate and always
// re-scans fresh). The traffic oracle's FIFO server makes any admission
// divergence permanent in the commit log, so byte-equality of the logs
// across 16 seeded runs is equality of the admitted event sequences.

TEST(ShardBatching, BatchedAdmitsExactlyTheOneAtATimeSet)
{
    for (uint64_t seed = 0; seed < 16; ++seed) {
        TrafficResult oracle = runTraffic(seed, SchedMode::Fast, 1);
        TrafficOpts one_at_a_time;
        one_at_a_time.batch = false;
        TrafficResult unbatched =
            runTraffic(seed, SchedMode::Windowed, 4, one_at_a_time);
        TrafficResult batched = runTraffic(seed, SchedMode::Windowed, 4);
        EXPECT_EQ(unbatched.log, oracle.log) << "seed " << seed;
        EXPECT_EQ(batched.log, unbatched.log) << "seed " << seed;
        EXPECT_EQ(batched.clocks, unbatched.clocks) << "seed " << seed;
        EXPECT_EQ(batched.switches, unbatched.switches) << "seed " << seed;
        EXPECT_EQ(batched.syncPoints, unbatched.syncPoints)
            << "seed " << seed;
        EXPECT_EQ(batched.clocks, oracle.clocks) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Weighted ShardPlan: partition invariants, optimality against a
// brute-force boundary search, and the engine-level rebalancing loop.

TEST(ShardPlan, WeightedPartitionInvariants)
{
    Xoshiro256StarStar rng(hash64(0x9e1dULL));
    for (uint32_t cores : {2u, 7u, 8u, 32u, 129u}) {
        for (uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
            std::vector<uint64_t> weights(cores);
            for (uint64_t &w : weights)
                w = rng.next() % 100;
            ShardPlan plan(cores, shards, weights);
            ShardPlan again(cores, shards, weights);
            CoreId expect_begin = 0;
            for (uint32_t s = 0; s < plan.numShards(); ++s) {
                EXPECT_EQ(plan.shardBegin(s), expect_begin)
                    << "shard " << s << " not contiguous under " << cores
                    << "/" << shards;
                EXPECT_GT(plan.shardSize(s), 0u)
                    << "shard " << s << " starved under " << cores << "/"
                    << shards;
                EXPECT_EQ(again.shardBegin(s), plan.shardBegin(s))
                    << "weighted plan not deterministic";
                expect_begin = plan.shardEnd(s);
            }
            EXPECT_EQ(expect_begin, cores);
        }
    }
}

TEST(ShardPlan, WeightedMinimizesMaxShardWeight)
{
    // Brute force over every contiguous boundary placement on small
    // instances; the plan's bottleneck shard must match the optimum.
    Xoshiro256StarStar rng(hash64(77));
    for (int trial = 0; trial < 40; ++trial) {
        const uint32_t cores = 3 + rng.next() % 8;   // 3..10
        const uint32_t shards = 2 + rng.next() % 3;  // 2..4
        if (shards > cores)
            continue;
        std::vector<uint64_t> weights(cores);
        for (uint64_t &w : weights)
            w = 1 + rng.next() % 50;
        ShardPlan plan(cores, shards, weights);
        auto maxShard = [&](const std::vector<uint32_t> &sizes) {
            uint64_t worst = 0;
            uint32_t at = 0;
            for (uint32_t size : sizes) {
                uint64_t acc = 0;
                for (uint32_t i = 0; i < size; ++i)
                    acc += weights[at++];
                worst = std::max(worst, acc);
            }
            return worst;
        };
        // Enumerate all compositions of `cores` into `shards` positive
        // parts (small: C(9,3) at most).
        uint64_t best = ~uint64_t(0);
        std::vector<uint32_t> sizes(shards, 1);
        auto recurse = [&](auto &&self, uint32_t s, uint32_t left) -> void {
            if (s + 1 == shards) {
                sizes[s] = left;
                best = std::min(best, maxShard(sizes));
                return;
            }
            for (uint32_t take = 1; take <= left - (shards - s - 1);
                 ++take) {
                sizes[s] = take;
                self(self, s + 1, left - take);
            }
        };
        recurse(recurse, 0, cores);
        std::vector<uint32_t> plan_sizes;
        for (uint32_t s = 0; s < plan.numShards(); ++s)
            plan_sizes.push_back(plan.shardSize(s));
        EXPECT_EQ(maxShard(plan_sizes), best)
            << "trial " << trial << ": " << cores << " cores / " << shards
            << " shards";
    }
}

TEST(ShardPlan, WeightedFallbacksMatchBalanced)
{
    // Empty weights: the weighted ctor is the balanced partition.
    ShardPlan balanced(32, 4);
    ShardPlan empty(32, 4, {});
    for (uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(empty.shardBegin(s), balanced.shardBegin(s));
        EXPECT_EQ(empty.shardEnd(s), balanced.shardEnd(s));
    }
    // All-zero weights (a run that admitted nothing): every shard still
    // gets at least one core.
    ShardPlan zeros(8, 4, std::vector<uint64_t>(8, 0));
    for (uint32_t s = 0; s < 4; ++s)
        EXPECT_GT(zeros.shardSize(s), 0u) << "shard " << s;
}

TEST(ShardRebalance, ProfiledReplanStaysBitIdentical)
{
    // Two back-to-back runs on one engine: the first run records the
    // per-core gate profile, the second re-plans the shard boundaries
    // from it. The rebalanced engine must still replay the sequential
    // commit order byte for byte — any contiguous plan is
    // result-equivalent by construction, and this checks the
    // construction.
    for (uint64_t seed : {3ull, 11ull}) {
        TrafficOpts two_runs;
        two_runs.runs = 2;
        TrafficResult oracle =
            runTraffic(seed, SchedMode::Fast, 1, two_runs);
        TrafficOpts rebalanced = two_runs;
        rebalanced.rebalance = true;
        TrafficResult windowed =
            runTraffic(seed, SchedMode::Windowed, 4, rebalanced);
        EXPECT_EQ(windowed.log, oracle.log) << "seed " << seed;
        EXPECT_EQ(windowed.clocks, oracle.clocks) << "seed " << seed;
        EXPECT_EQ(windowed.switches, oracle.switches) << "seed " << seed;
        EXPECT_EQ(windowed.syncPoints, oracle.syncPoints)
            << "seed " << seed;
    }
}

TEST(ShardRebalance, PrimedSkewedProfileStaysBitIdentical)
{
    // A deliberately skewed primed profile forces lopsided boundaries
    // from the very first run.
    TrafficResult oracle = runTraffic(5, SchedMode::Fast, 1);
    TrafficOpts skewed;
    skewed.rebalance = true;
    for (uint32_t i = 0; i < 8; ++i)
        skewed.profile.push_back(1 + (i * 7) % 13);
    TrafficResult windowed =
        runTraffic(5, SchedMode::Windowed, 4, skewed);
    EXPECT_EQ(windowed.log, oracle.log);
    EXPECT_EQ(windowed.clocks, oracle.clocks);
    EXPECT_EQ(windowed.switches, oracle.switches);
    EXPECT_EQ(windowed.syncPoints, oracle.syncPoints);
}

// ---------------------------------------------------------------------
// parseShardCount contract (the SPMRT_ENGINE_SHARDS validator). The
// process-death behaviour of an invalid environment value is covered in
// test_errors.cpp; here the parser itself.

TEST(ParseShardCount, AcceptsPositiveIntegersWithinHost)
{
    uint32_t out = 0;
    std::string error;
    EXPECT_TRUE(parseShardCount("1", 8, out, error));
    EXPECT_EQ(out, 1u);
    EXPECT_TRUE(parseShardCount("8", 8, out, error));
    EXPECT_EQ(out, 8u);
    EXPECT_TRUE(parseShardCount(" 4 ", 8, out, error));
    EXPECT_EQ(out, 4u);
    // Unknown host (0) skips the upper bound.
    EXPECT_TRUE(parseShardCount("64", 0, out, error));
    EXPECT_EQ(out, 64u);
}

TEST(ParseShardCount, AutoResolvesToHostConcurrency)
{
    uint32_t out = 0;
    std::string error;
    EXPECT_TRUE(parseShardCount("auto", 8, out, error));
    EXPECT_EQ(out, 8u);
    EXPECT_TRUE(parseShardCount(" auto ", 3, out, error));
    EXPECT_EQ(out, 3u);
    // Unknown host concurrency: fall back to sequential, don't guess.
    EXPECT_TRUE(parseShardCount("auto", 0, out, error));
    EXPECT_EQ(out, 1u);
    // Only the exact keyword; anything else alphabetic is an error.
    EXPECT_FALSE(parseShardCount("automatic", 8, out, error));
    EXPECT_NE(error.find("not a number"), std::string::npos);
    EXPECT_FALSE(parseShardCount("auto 2", 8, out, error));
    EXPECT_NE(error.find("not a number"), std::string::npos);
    EXPECT_FALSE(parseShardCount("Auto", 8, out, error));
}

TEST(ParseShardCount, RejectsMalformedInput)
{
    uint32_t out = 0;
    std::string error;
    EXPECT_FALSE(parseShardCount("", 8, out, error));
    EXPECT_NE(error.find("empty"), std::string::npos);
    EXPECT_FALSE(parseShardCount("banana", 8, out, error));
    EXPECT_NE(error.find("not a number"), std::string::npos);
    EXPECT_FALSE(parseShardCount("4cores", 8, out, error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
    EXPECT_FALSE(parseShardCount("0", 8, out, error));
    EXPECT_NE(error.find("zero"), std::string::npos);
    EXPECT_FALSE(parseShardCount("-2", 8, out, error));
    EXPECT_NE(error.find("negative"), std::string::npos);
    EXPECT_FALSE(parseShardCount("9", 8, out, error));
    EXPECT_NE(error.find("exceeds"), std::string::npos);
}

} // namespace
} // namespace spmrt
