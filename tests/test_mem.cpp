/**
 * @file
 * Unit tests for the memory subsystem: address map, allocator, NoC
 * contention, LLC behaviour, DRAM bandwidth server.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/address_map.hpp"
#include "mem/alloc.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "mem/noc.hpp"
#include "sim/machine.hpp"

namespace spmrt {
namespace {

TEST(AddressMap, DecodesSpmOwnership)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    for (CoreId id = 0; id < cfg.numCores(); ++id) {
        DecodedAddr d = map.decode(map.spmBase(id) + 16, 4);
        EXPECT_EQ(d.region, MemRegion::Spm);
        EXPECT_EQ(d.owner, id);
        EXPECT_EQ(d.offset, 16u);
    }
}

TEST(AddressMap, DecodesDram)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    DecodedAddr d = map.decode(AddressMap::kDramBase + 4096, 8);
    EXPECT_EQ(d.region, MemRegion::Dram);
    EXPECT_EQ(d.offset, 4096u);
}

TEST(AddressMap, SpmWindowsDisjoint)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    EXPECT_GE(map.spmBase(1), map.spmBase(0) + cfg.spmBytes);
}

TEST(RangeAllocator, AllocatesAligned)
{
    RangeAllocator heap(0x1000, 4096);
    Addr a = heap.alloc(100, 64);
    EXPECT_NE(a, kNullAddr);
    EXPECT_EQ(a % 64, 0u);
    Addr b = heap.alloc(100, 64);
    EXPECT_NE(b, kNullAddr);
    EXPECT_NE(a, b);
}

TEST(RangeAllocator, ExhaustsAndRecovers)
{
    RangeAllocator heap(0x1000, 1024);
    Addr a = heap.alloc(1024, 8);
    EXPECT_NE(a, kNullAddr);
    EXPECT_EQ(heap.alloc(8, 8), kNullAddr);
    heap.release(a);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    EXPECT_NE(heap.alloc(1024, 8), kNullAddr);
}

TEST(RangeAllocator, CoalescesFreedNeighbours)
{
    RangeAllocator heap(0x1000, 3 * 64);
    Addr a = heap.alloc(64, 8);
    Addr b = heap.alloc(64, 8);
    Addr c = heap.alloc(64, 8);
    ASSERT_NE(c, kNullAddr);
    heap.release(a);
    heap.release(c);
    heap.release(b); // middle block must merge with both neighbours
    EXPECT_NE(heap.alloc(3 * 64, 8), kNullAddr);
}

TEST(RangeAllocator, TracksUsage)
{
    RangeAllocator heap(0x100, 4096);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    Addr a = heap.alloc(128, 8);
    EXPECT_EQ(heap.bytesInUse(), 128u);
    EXPECT_EQ(heap.liveBlockCount(), 1u);
    heap.release(a);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    EXPECT_EQ(heap.liveBlockCount(), 0u);
}

TEST(Noc, LatencyGrowsWithDistance)
{
    MachineConfig cfg; // full 16x8 machine
    MeshNoc noc(cfg);
    NocEndpoint origin = noc.coreEndpoint(0);
    Cycles near = noc.traverse(origin, noc.coreEndpoint(1), 0, 4);
    noc.reset();
    Cycles far = noc.traverse(
        origin, noc.coreEndpoint(cfg.numCores() - 1), 0, 4);
    EXPECT_GT(far, near);
}

TEST(Noc, ZeroDistanceCostsSerializationOnly)
{
    MachineConfig cfg = MachineConfig::tiny();
    MeshNoc noc(cfg);
    NocEndpoint self = noc.coreEndpoint(0);
    Cycles t = noc.traverse(self, self, 100, 4);
    // No hops: just tail serialization of the payload flit.
    EXPECT_LE(t, 102u);
}

TEST(Noc, ContentionDelaysLaterPackets)
{
    MachineConfig cfg = MachineConfig::tiny();
    MeshNoc noc(cfg);
    NocEndpoint src = noc.coreEndpoint(0);
    NocEndpoint dst = noc.coreEndpoint(3);
    Cycles first = noc.traverse(src, dst, 0, 4);
    Cycles second = noc.traverse(src, dst, 0, 4);
    EXPECT_GT(second, first) << "same-cycle packets must queue on links";
}

TEST(Noc, RucheShortensLongStraights)
{
    MachineConfig with_ruche;
    with_ruche.rucheX = 3;
    MachineConfig no_ruche = with_ruche;
    no_ruche.rucheX = 0;

    MeshNoc fast(with_ruche), slow(no_ruche);
    NocEndpoint a = fast.coreEndpoint(0);
    NocEndpoint b = fast.coreEndpoint(15); // 15 columns east
    EXPECT_LT(fast.traverse(a, b, 0, 4), slow.traverse(a, b, 0, 4));
}

TEST(Noc, BankEndpointsOnEdgeRows)
{
    MachineConfig cfg;
    MeshNoc noc(cfg);
    NocEndpoint top = noc.bankEndpoint(0);
    NocEndpoint bottom = noc.bankEndpoint(cfg.llcBanks - 1);
    EXPECT_EQ(top.y, -1);
    EXPECT_EQ(bottom.y, static_cast<int32_t>(cfg.meshRows));
}

TEST(Llc, HitsAfterFill)
{
    MachineConfig cfg = MachineConfig::tiny();
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    Cycles miss = llc.access(0, 0, 4, false);
    Cycles hit = llc.access(0, 0, 4, false);
    EXPECT_EQ(llc.misses(), 1u);
    EXPECT_EQ(llc.hits(), 1u);
    EXPECT_LT(hit, miss);
}

TEST(Llc, DistinctLinesMissSeparately)
{
    MachineConfig cfg = MachineConfig::tiny();
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    llc.access(0, 0, 4, false);
    llc.access(0, cfg.llcLineBytes * cfg.llcBanks * cfg.llcSetsPerBank, 4,
               false); // same set, different tag
    EXPECT_EQ(llc.misses(), 2u);
}

TEST(Llc, EvictsLruAndWritesBackDirty)
{
    MachineConfig cfg = MachineConfig::tiny();
    cfg.llcWays = 2;
    cfg.llcSetsPerBank = 1;
    cfg.llcBanks = 2;
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    uint64_t set_stride =
        static_cast<uint64_t>(cfg.llcLineBytes) * cfg.llcBanks;

    llc.access(0, 0 * set_stride, 4, true);  // dirty A
    llc.access(0, 1 * set_stride, 4, false); // B
    llc.access(0, 2 * set_stride, 4, false); // evicts dirty A
    EXPECT_EQ(llc.writebacks(), 1u);

    llc.access(0, 0 * set_stride, 4, false); // A misses again
    EXPECT_EQ(llc.misses(), 4u);
}

TEST(Dram, BandwidthServerQueues)
{
    MachineConfig cfg;
    DramModel dram(cfg);
    Cycles first = dram.access(0, 0, 64);
    Cycles second = dram.access(0, 64, 64);
    EXPECT_GT(second, first) << "simultaneous transfers must serialize";
    EXPECT_EQ(dram.bytesMoved(), 128u);
}

TEST(Dram, LatencyDominatesSmallTransfers)
{
    MachineConfig cfg;
    DramModel dram(cfg);
    Cycles done = dram.access(0, 0, 4);
    EXPECT_GE(done, cfg.dramLatency);
}

TEST(MemorySystem, PokePeekRoundTrip)
{
    Machine machine(MachineConfig::tiny());
    auto &mem = machine.mem();
    Addr dram = machine.dramAlloc(16);
    mem.pokeAs<uint64_t>(dram, 0x0123456789abcdefull);
    EXPECT_EQ(mem.peekAs<uint64_t>(dram), 0x0123456789abcdefull);

    Addr spm = mem.map().spmBase(3) + 8;
    mem.pokeAs<uint32_t>(spm, 0xa5a5a5a5u);
    EXPECT_EQ(mem.peekAs<uint32_t>(spm), 0xa5a5a5a5u);
}

TEST(MemorySystem, CountsAccessKinds)
{
    Machine machine(MachineConfig::tiny());
    Addr dram = machine.dramAlloc(8);
    Addr remote = machine.mem().map().spmBase(1);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        (void)core.load<uint32_t>(core.spmBase());
        core.store<uint32_t>(core.spmBase(), 1);
        (void)core.load<uint32_t>(remote);
        core.store<uint32_t>(remote, 2);
        (void)core.load<uint32_t>(dram);
        core.store<uint32_t>(dram, 3);
    });
    const MemStats &stats = machine.mem().stats();
    EXPECT_EQ(stats.localSpmLoads, 1u);
    EXPECT_EQ(stats.localSpmStores, 1u);
    EXPECT_EQ(stats.remoteSpmLoads, 1u);
    EXPECT_EQ(stats.remoteSpmStores, 1u);
    EXPECT_EQ(stats.dramLoads, 1u);
    EXPECT_EQ(stats.dramStores, 1u);
}

TEST(MemorySystem, RemoteLatencyGradientMatchesFig5)
{
    // Every core loads from core 0's SPM; farther cores must observe
    // latency no better than much closer cores on the same column path.
    MachineConfig cfg = MachineConfig::small(); // 8x4
    Machine machine(cfg);
    Addr hot = machine.mem().map().spmBase(0);
    std::vector<Cycles> latency(cfg.numCores(), 0);
    machine.run([&](Core &core) {
        // Everyone fires at t=0 to create the hot spot.
        Cycles t0 = core.now();
        (void)core.load<uint32_t>(hot);
        latency[core.id()] = core.now() - t0;
    });
    // Core 0 itself is fastest; the far corner is slower than a neighbour.
    CoreId corner = cfg.numCores() - 1;
    EXPECT_LT(latency[0], latency[1]);
    EXPECT_GT(latency[corner], latency[1]);
}

} // namespace
} // namespace spmrt
