/**
 * @file
 * Unit tests for the memory subsystem: address map, allocator, NoC
 * contention, LLC behaviour, DRAM bandwidth server.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/alloc.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "mem/memory_system.hpp"
#include "mem/noc.hpp"
#include "sim/machine.hpp"

namespace spmrt {
namespace {

TEST(AddressMap, DecodesSpmOwnership)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    for (CoreId id = 0; id < cfg.numCores(); ++id) {
        DecodedAddr d = map.decode(map.spmBase(id) + 16, 4);
        EXPECT_EQ(d.region, MemRegion::Spm);
        EXPECT_EQ(d.owner, id);
        EXPECT_EQ(d.offset, 16u);
    }
}

TEST(AddressMap, DecodesDram)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    DecodedAddr d = map.decode(AddressMap::kDramBase + 4096, 8);
    EXPECT_EQ(d.region, MemRegion::Dram);
    EXPECT_EQ(d.offset, 4096u);
}

TEST(AddressMap, SpmWindowsDisjoint)
{
    MachineConfig cfg = MachineConfig::tiny();
    AddressMap map(cfg);
    EXPECT_GE(map.spmBase(1), map.spmBase(0) + cfg.spmBytes);
}

TEST(RangeAllocator, AllocatesAligned)
{
    RangeAllocator heap(0x1000, 4096);
    Addr a = heap.alloc(100, 64);
    EXPECT_NE(a, kNullAddr);
    EXPECT_EQ(a % 64, 0u);
    Addr b = heap.alloc(100, 64);
    EXPECT_NE(b, kNullAddr);
    EXPECT_NE(a, b);
}

TEST(RangeAllocator, ExhaustsAndRecovers)
{
    RangeAllocator heap(0x1000, 1024);
    Addr a = heap.alloc(1024, 8);
    EXPECT_NE(a, kNullAddr);
    EXPECT_EQ(heap.alloc(8, 8), kNullAddr);
    heap.release(a);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    EXPECT_NE(heap.alloc(1024, 8), kNullAddr);
}

TEST(RangeAllocator, CoalescesFreedNeighbours)
{
    RangeAllocator heap(0x1000, 3 * 64);
    Addr a = heap.alloc(64, 8);
    Addr b = heap.alloc(64, 8);
    Addr c = heap.alloc(64, 8);
    ASSERT_NE(c, kNullAddr);
    heap.release(a);
    heap.release(c);
    heap.release(b); // middle block must merge with both neighbours
    EXPECT_NE(heap.alloc(3 * 64, 8), kNullAddr);
}

TEST(RangeAllocator, TracksUsage)
{
    RangeAllocator heap(0x100, 4096);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    Addr a = heap.alloc(128, 8);
    EXPECT_EQ(heap.bytesInUse(), 128u);
    EXPECT_EQ(heap.liveBlockCount(), 1u);
    heap.release(a);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    EXPECT_EQ(heap.liveBlockCount(), 0u);
}

TEST(Noc, LatencyGrowsWithDistance)
{
    MachineConfig cfg; // full 16x8 machine
    MeshNoc noc(cfg);
    NocEndpoint origin = noc.coreEndpoint(0);
    Cycles near = noc.traverse(origin, noc.coreEndpoint(1), 0, 4);
    noc.reset();
    Cycles far = noc.traverse(
        origin, noc.coreEndpoint(cfg.numCores() - 1), 0, 4);
    EXPECT_GT(far, near);
}

TEST(Noc, ZeroDistanceCostsSerializationOnly)
{
    MachineConfig cfg = MachineConfig::tiny();
    MeshNoc noc(cfg);
    NocEndpoint self = noc.coreEndpoint(0);
    Cycles t = noc.traverse(self, self, 100, 4);
    // No hops: just tail serialization of the payload flit.
    EXPECT_LE(t, 102u);
}

TEST(Noc, ContentionDelaysLaterPackets)
{
    MachineConfig cfg = MachineConfig::tiny();
    MeshNoc noc(cfg);
    NocEndpoint src = noc.coreEndpoint(0);
    NocEndpoint dst = noc.coreEndpoint(3);
    Cycles first = noc.traverse(src, dst, 0, 4);
    Cycles second = noc.traverse(src, dst, 0, 4);
    EXPECT_GT(second, first) << "same-cycle packets must queue on links";
}

TEST(Noc, RucheShortensLongStraights)
{
    MachineConfig with_ruche;
    with_ruche.rucheX = 3;
    MachineConfig no_ruche = with_ruche;
    no_ruche.rucheX = 0;

    MeshNoc fast(with_ruche), slow(no_ruche);
    NocEndpoint a = fast.coreEndpoint(0);
    NocEndpoint b = fast.coreEndpoint(15); // 15 columns east
    EXPECT_LT(fast.traverse(a, b, 0, 4), slow.traverse(a, b, 0, 4));
}

TEST(Noc, BankEndpointsOnEdgeRows)
{
    MachineConfig cfg;
    MeshNoc noc(cfg);
    NocEndpoint top = noc.bankEndpoint(0);
    NocEndpoint bottom = noc.bankEndpoint(cfg.llcBanks - 1);
    EXPECT_EQ(top.y, -1);
    EXPECT_EQ(bottom.y, static_cast<int32_t>(cfg.meshRows));
}

TEST(Llc, HitsAfterFill)
{
    MachineConfig cfg = MachineConfig::tiny();
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    Cycles miss = llc.access(0, 0, 4, false);
    Cycles hit = llc.access(0, 0, 4, false);
    EXPECT_EQ(llc.misses(), 1u);
    EXPECT_EQ(llc.hits(), 1u);
    EXPECT_LT(hit, miss);
}

TEST(Llc, DistinctLinesMissSeparately)
{
    MachineConfig cfg = MachineConfig::tiny();
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    llc.access(0, 0, 4, false);
    llc.access(0, cfg.llcLineBytes * cfg.llcBanks * cfg.llcSetsPerBank, 4,
               false); // same set, different tag
    EXPECT_EQ(llc.misses(), 2u);
}

TEST(Llc, EvictsLruAndWritesBackDirty)
{
    MachineConfig cfg = MachineConfig::tiny();
    cfg.llcWays = 2;
    cfg.llcSetsPerBank = 1;
    cfg.llcBanks = 2;
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    uint64_t set_stride =
        static_cast<uint64_t>(cfg.llcLineBytes) * cfg.llcBanks;

    llc.access(0, 0 * set_stride, 4, true);  // dirty A
    llc.access(0, 1 * set_stride, 4, false); // B
    llc.access(0, 2 * set_stride, 4, false); // evicts dirty A
    EXPECT_EQ(llc.writebacks(), 1u);

    llc.access(0, 0 * set_stride, 4, false); // A misses again
    EXPECT_EQ(llc.misses(), 4u);
}

TEST(Llc, OddBankCountOnOneEdgeStripes)
{
    // A single-edge placement admits bank counts the historical
    // top/bottom split could not (validate() only demands divisibility
    // across the chosen edge rows); the model stripes lines over any
    // nonzero count.
    MachineConfig cfg = MachineConfig::small();
    cfg.llcPlacement = LlcPlacement::Top;
    cfg.llcBanks = 5;
    cfg.validate();
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    EXPECT_EQ(llc.numBanks(), 5u);
    for (uint32_t line = 0; line < 10; ++line) {
        uint64_t offset = static_cast<uint64_t>(line) * cfg.llcLineBytes;
        EXPECT_EQ(llc.bankOf(offset), line % 5) << "line " << line;
        llc.access(0, offset, 4, false);
    }
    EXPECT_EQ(llc.misses(), 10u);
}

TEST(Dram, BandwidthServerQueues)
{
    MachineConfig cfg;
    DramModel dram(cfg);
    Cycles first = dram.access(0, 0, 64);
    Cycles second = dram.access(0, 64, 64);
    EXPECT_GT(second, first) << "simultaneous transfers must serialize";
    EXPECT_EQ(dram.bytesMoved(), 128u);
}

TEST(Dram, LatencyDominatesSmallTransfers)
{
    MachineConfig cfg;
    DramModel dram(cfg);
    Cycles done = dram.access(0, 0, 4);
    EXPECT_GE(done, cfg.dramLatency);
}

TEST(Dram, LineInterleavesAcrossChannels)
{
    MachineConfig cfg;
    cfg.dramChannels = 4;
    DramModel dram(cfg);
    ASSERT_EQ(dram.numChannels(), 4u);
    // Consecutive LLC lines round-robin the channels; offsets within a
    // line stay on that line's channel.
    for (uint64_t line = 0; line < 16; ++line) {
        uint64_t offset = line * cfg.llcLineBytes;
        EXPECT_EQ(dram.channelOf(offset), line % 4)
            << "line " << line;
        EXPECT_EQ(dram.channelOf(offset + cfg.llcLineBytes - 1),
                  dram.channelOf(offset))
            << "line " << line;
    }
}

TEST(Dram, IndependentChannelsDoNotQueueEachOther)
{
    MachineConfig cfg;
    cfg.dramChannels = 2;
    DramModel dual(cfg);
    // Two same-cycle transfers to adjacent lines land on different
    // channels: neither waits, so both complete at the single-transfer
    // time. On a single channel the second must queue behind the first.
    Cycles a = dual.access(0, 0, 64);
    Cycles b = dual.access(0, 64, 64);
    EXPECT_EQ(a, b) << "adjacent lines should use disjoint channels";
    EXPECT_EQ(dual.channelBytes(0), 64u);
    EXPECT_EQ(dual.channelBytes(1), 64u);

    MachineConfig mono;
    DramModel single(mono);
    Cycles c = single.access(0, 0, 64);
    Cycles d = single.access(0, 64, 64);
    EXPECT_GT(d, c) << "one channel must serialize the pair";
}

TEST(Dram, SameChannelTrafficStillQueues)
{
    MachineConfig cfg;
    cfg.dramChannels = 2;
    DramModel dram(cfg);
    // Lines 0 and 2 both map to channel 0; the bus serializes them even
    // though channel 1 is idle.
    ASSERT_EQ(dram.channelOf(0), dram.channelOf(2 * cfg.llcLineBytes));
    Cycles a = dram.access(0, 0, 64);
    Cycles b = dram.access(0, 2 * cfg.llcLineBytes, 64);
    EXPECT_GT(b, a);
    EXPECT_EQ(dram.channelBytes(0), 128u);
    EXPECT_EQ(dram.channelBytes(1), 0u);
}

TEST(Dram, ResetClearsPerChannelCounters)
{
    MachineConfig cfg;
    cfg.dramChannels = 2;
    DramModel dram(cfg);
    dram.access(0, 0, 64);
    dram.access(0, 64, 64);
    dram.reset();
    EXPECT_EQ(dram.bytesMoved(), 0u);
    EXPECT_EQ(dram.channelBytes(0), 0u);
    EXPECT_EQ(dram.channelBytes(1), 0u);
    EXPECT_EQ(dram.channelBacklog(0), 0u);
}

// ---- derived address-map geometry --------------------------------------

TEST(AddressMap, WideSpmWindowStrideDecodes)
{
    MachineConfig cfg = MachineConfig::tiny();
    cfg.spmBytes = 8192;
    cfg.spmWindowBytes = 16384;
    cfg.validate();
    AddressMap map(cfg);
    EXPECT_EQ(map.spmStride(), 16384u);
    for (CoreId id = 0; id < cfg.numCores(); ++id) {
        EXPECT_EQ(map.spmBase(id),
                  AddressMap::kSpmBase + static_cast<Addr>(id) * 16384u);
        DecodedAddr d = map.decode(map.spmBase(id) + 8000, 4);
        EXPECT_EQ(d.region, MemRegion::Spm);
        EXPECT_EQ(d.owner, id);
        EXPECT_EQ(d.offset, 8000u);
    }
}

TEST(AddressMap, DramMovesUpWhenSpmRegionOutgrowsTheDefaultBase)
{
    // 1024 cores at a 1 MiB window stride put the SPM region end at
    // 0x1000'0000 + 0x4000'0000, past the historical DRAM base; the map
    // must relocate DRAM above the SPM region instead of aliasing it.
    MachineConfig cfg = MachineConfig::big1024();
    cfg.spmWindowBytes = 1u << 20;
    cfg.dramBytes = 64ull * 1024 * 1024;
    cfg.validate();
    AddressMap map(cfg);
    EXPECT_GE(map.dramBase(), cfg.spmRegionEnd());
    EXPECT_GT(map.dramBase(), AddressMap::kDramBase);
    DecodedAddr d = map.decode(map.dramBase() + 64, 4);
    EXPECT_EQ(d.region, MemRegion::Dram);
    EXPECT_EQ(d.offset, 64u);
    // The last core's window still decodes to its owner.
    DecodedAddr s = map.decode(map.spmBase(cfg.numCores() - 1), 4);
    EXPECT_EQ(s.owner, cfg.numCores() - 1);
}

TEST(AddressMap, PaperGeometryKeepsHistoricalConstants)
{
    // The free-parameter map must be bit-identical on the paper machine:
    // the derived bases resolve to the historical constants every
    // existing setup path still references.
    AddressMap map((MachineConfig()));
    EXPECT_EQ(map.spmStride(), AddressMap::kSpmStride);
    EXPECT_EQ(map.dramBase(), AddressMap::kDramBase);
}

TEST(MemorySystem, PokePeekRoundTrip)
{
    Machine machine(MachineConfig::tiny());
    auto &mem = machine.mem();
    Addr dram = machine.dramAlloc(16);
    mem.pokeAs<uint64_t>(dram, 0x0123456789abcdefull);
    EXPECT_EQ(mem.peekAs<uint64_t>(dram), 0x0123456789abcdefull);

    Addr spm = mem.map().spmBase(3) + 8;
    mem.pokeAs<uint32_t>(spm, 0xa5a5a5a5u);
    EXPECT_EQ(mem.peekAs<uint32_t>(spm), 0xa5a5a5a5u);
}

TEST(MemorySystem, CountsAccessKinds)
{
    Machine machine(MachineConfig::tiny());
    Addr dram = machine.dramAlloc(8);
    Addr remote = machine.mem().map().spmBase(1);
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        (void)core.load<uint32_t>(core.spmBase());
        core.store<uint32_t>(core.spmBase(), 1);
        (void)core.load<uint32_t>(remote);
        core.store<uint32_t>(remote, 2);
        (void)core.load<uint32_t>(dram);
        core.store<uint32_t>(dram, 3);
    });
    const MemStats &stats = machine.mem().stats();
    EXPECT_EQ(stats.localSpmLoads, 1u);
    EXPECT_EQ(stats.localSpmStores, 1u);
    EXPECT_EQ(stats.remoteSpmLoads, 1u);
    EXPECT_EQ(stats.remoteSpmStores, 1u);
    EXPECT_EQ(stats.dramLoads, 1u);
    EXPECT_EQ(stats.dramStores, 1u);
}

// ---- Decode fast path and burst accounting -------------------------------

/**
 * Regression for the retired one-entry decode cache: consecutive
 * accesses that alternate owners and regions at the *same* window
 * offset — the pattern a stale cache entry would mis-serve, and exactly
 * what scheduler interleaving produces — must decode correctly, and none
 * of them may fall off the computed fast decode.
 */
TEST(MemorySystem, DecodeHandlesInterleavedOwnersAndRegions)
{
    MachineConfig cfg = MachineConfig::tiny();
    MemorySystem mem(cfg);
    const AddressMap &map = mem.map();
    Addr dram = AddressMap::kDramBase + 64;

    for (CoreId id = 0; id < cfg.numCores(); ++id)
        mem.pokeAs<uint32_t>(map.spmBase(id) + 16, 0x1000u + id);
    mem.pokeAs<uint32_t>(dram, 0xdddd0000u);

    ASSERT_EQ(mem.decodeMisses(), 0u) << "pokes decode via the full map";
    Cycles t = 0;
    for (int round = 0; round < 3; ++round) {
        for (CoreId id = 0; id < cfg.numCores(); ++id) {
            uint32_t value = 0;
            t = mem.load(0, t, map.spmBase(id) + 16, &value, 4);
            EXPECT_EQ(value, 0x1000u + id);
            uint32_t dram_value = 0;
            t = mem.load(0, t, dram, &dram_value, 4);
            EXPECT_EQ(dram_value, 0xdddd0000u);
        }
    }
    EXPECT_EQ(mem.decodeMisses(), 0u)
        << "in-range accesses must never take the slow decode";
}

/**
 * invalidateDecodeCache() must be callable at any point without
 * changing results or timing: it only re-snaps the precomputed decode
 * constants (see its audit note).
 */
TEST(MemorySystem, InvalidateDecodeCacheIsTimingNeutral)
{
    MachineConfig cfg = MachineConfig::tiny();
    MemorySystem plain(cfg);
    MemorySystem invalidated(cfg);
    Addr local = plain.map().spmBase(0) + 8;
    Addr remote = plain.map().spmBase(2) + 8;
    plain.pokeAs<uint64_t>(local, 42);
    invalidated.pokeAs<uint64_t>(local, 42);

    Cycles ta = 0, tb = 0;
    for (int i = 0; i < 10; ++i) {
        uint64_t a = 0, b = 0;
        ta = plain.load(0, ta, i % 2 ? local : remote, &a, 8);
        invalidated.invalidateDecodeCache();
        tb = invalidated.load(0, tb, i % 2 ? local : remote, &b, 8);
        EXPECT_EQ(a, b);
        EXPECT_EQ(ta, tb);
    }
    EXPECT_EQ(plain.stats().localSpmLoads,
              invalidated.stats().localSpmLoads);
    EXPECT_EQ(plain.stats().remoteSpmLoads,
              invalidated.stats().remoteSpmLoads);
}

/** Old-style per-chunk burst, retained as the oracle for loadBurst(). */
BurstResult
chunkedLoad(MemorySystem &mem, CoreId core, Cycles issue, Addr addr,
            void *out, uint32_t bytes)
{
    constexpr uint32_t kChunk = MemorySystem::kMaxChunk;
    auto *dst = static_cast<uint8_t *>(out);
    BurstResult r;
    r.lastDone = issue;
    uint32_t offset = 0;
    while (offset < bytes) {
        uint32_t chunk =
            std::min(bytes - offset, kChunk - ((addr + offset) % kChunk));
        Cycles done =
            mem.load(core, issue, addr + offset, dst + offset, chunk);
        r.lastDone = std::max(r.lastDone, done);
        issue += 1;
        offset += chunk;
        ++r.chunks;
    }
    r.lastIssue = issue;
    return r;
}

/** Old-style per-chunk posted store, the oracle for storeBurst(). */
BurstResult
chunkedStore(MemorySystem &mem, CoreId core, Cycles issue, Addr addr,
             const void *in, uint32_t bytes)
{
    constexpr uint32_t kChunk = MemorySystem::kMaxChunk;
    const auto *src = static_cast<const uint8_t *>(in);
    BurstResult r;
    r.lastDone = issue;
    uint32_t offset = 0;
    while (offset < bytes) {
        uint32_t chunk =
            std::min(bytes - offset, kChunk - ((addr + offset) % kChunk));
        Cycles done =
            mem.store(core, issue, addr + offset, src + offset, chunk);
        r.lastDone = std::max(r.lastDone, done);
        issue += 1;
        offset += chunk;
        ++r.chunks;
    }
    r.lastIssue = issue;
    return r;
}

/** Compare loadBurst/storeBurst against per-chunk twins on @p addr. */
void
expectBurstMatchesChunked(Addr addr, uint32_t bytes, Cycles issue)
{
    MachineConfig cfg = MachineConfig::tiny();
    MemorySystem burst_mem(cfg);
    MemorySystem chunk_mem(cfg);
    std::vector<uint8_t> data(bytes);
    for (uint32_t i = 0; i < bytes; ++i)
        data[i] = static_cast<uint8_t>(i * 7 + 3);

    // Loads: poke the pattern, pull it back both ways. Byte-at-a-time:
    // untimed poke/peek decode their whole range at once, and a range
    // crossing a window boundary is only legal chunk-wise.
    for (uint32_t i = 0; i < bytes; ++i) {
        burst_mem.poke(addr + i, &data[i], 1);
        chunk_mem.poke(addr + i, &data[i], 1);
    }
    std::vector<uint8_t> got_burst(bytes, 0), got_chunk(bytes, 0);
    BurstResult a =
        burst_mem.loadBurst(0, issue, addr, got_burst.data(), bytes);
    BurstResult b =
        chunkedLoad(chunk_mem, 0, issue, addr, got_chunk.data(), bytes);
    EXPECT_EQ(got_burst, data);
    EXPECT_EQ(got_chunk, data);
    EXPECT_EQ(a.chunks, b.chunks);
    EXPECT_EQ(a.lastDone, b.lastDone);
    EXPECT_EQ(a.lastIssue, b.lastIssue);

    // Stores: push a second pattern both ways from the post-load state.
    for (uint32_t i = 0; i < bytes; ++i)
        data[i] = static_cast<uint8_t>(i * 13 + 1);
    Cycles issue2 = a.lastDone + 5;
    a = burst_mem.storeBurst(0, issue2, addr, data.data(), bytes);
    b = chunkedStore(chunk_mem, 0, issue2, addr, data.data(), bytes);
    EXPECT_EQ(a.chunks, b.chunks);
    EXPECT_EQ(a.lastDone, b.lastDone);
    EXPECT_EQ(a.lastIssue, b.lastIssue);
    EXPECT_EQ(burst_mem.storeDrainTime(0), chunk_mem.storeDrainTime(0));
    std::vector<uint8_t> readback(bytes);
    for (uint32_t i = 0; i < bytes; ++i)
        burst_mem.peek(addr + i, &readback[i], 1);
    EXPECT_EQ(readback, data);

    // Every counter the two systems kept must agree.
    EXPECT_EQ(burst_mem.stats().localSpmLoads,
              chunk_mem.stats().localSpmLoads);
    EXPECT_EQ(burst_mem.stats().localSpmStores,
              chunk_mem.stats().localSpmStores);
    EXPECT_EQ(burst_mem.stats().remoteSpmLoads,
              chunk_mem.stats().remoteSpmLoads);
    EXPECT_EQ(burst_mem.stats().remoteSpmStores,
              chunk_mem.stats().remoteSpmStores);
    EXPECT_EQ(burst_mem.stats().dramLoads, chunk_mem.stats().dramLoads);
    EXPECT_EQ(burst_mem.stats().dramStores, chunk_mem.stats().dramStores);
}

TEST(MemorySystem, LocalBurstMatchesPerChunkAccounting)
{
    MachineConfig cfg = MachineConfig::tiny();
    Addr base = AddressMap::kSpmBase; // core 0's window
    expectBurstMatchesChunked(base, 256, 10);       // aligned, multi-chunk
    expectBurstMatchesChunked(base + 24, 200, 0);   // unaligned start
    expectBurstMatchesChunked(base + 60, 8, 3);     // straddles one line
    expectBurstMatchesChunked(base + 100, 1, 7);    // single byte
    expectBurstMatchesChunked(base, cfg.spmBytes, 1); // whole window
}

TEST(MemorySystem, CrossWindowBurstMatchesPerChunkAccounting)
{
    // The SPM stride equals the window size, so a burst starting near
    // the end of core 0's window legally continues into core 1's. The
    // whole-burst fast path must bail out to the per-chunk path, which
    // splits the traffic local/remote exactly as chunked accesses would.
    Addr near_end = AddressMap::kSpmBase + 4096 - 96;
    expectBurstMatchesChunked(near_end, 192, 4);
    expectBurstMatchesChunked(near_end + 32, 96, 0);
}

TEST(MemorySystem, DramBurstMatchesPerChunkAccounting)
{
    expectBurstMatchesChunked(AddressMap::kDramBase + 128, 512, 2);
    expectBurstMatchesChunked(AddressMap::kDramBase + 40, 100, 9);
}

TEST(MemorySystem, ZeroByteBurstIsFree)
{
    MemorySystem mem(MachineConfig::tiny());
    BurstResult r = mem.loadBurst(0, 5, 0xdeadbeef, nullptr, 0);
    EXPECT_EQ(r.chunks, 0u);
    EXPECT_EQ(r.lastDone, 5u);
    r = mem.storeBurst(0, 6, 0xdeadbeef, nullptr, 0);
    EXPECT_EQ(r.chunks, 0u);
    EXPECT_EQ(r.lastIssue, 6u);
    EXPECT_EQ(mem.decodeMisses(), 0u)
        << "zero-byte bursts must not decode their (possibly bogus) address";
}

TEST(MemorySystem, RemoteLatencyGradientMatchesFig5)
{
    // Every core loads from core 0's SPM; farther cores must observe
    // latency no better than much closer cores on the same column path.
    MachineConfig cfg = MachineConfig::small(); // 8x4
    Machine machine(cfg);
    Addr hot = machine.mem().map().spmBase(0);
    std::vector<Cycles> latency(cfg.numCores(), 0);
    machine.run([&](Core &core) {
        // Everyone fires at t=0 to create the hot spot.
        Cycles t0 = core.now();
        (void)core.load<uint32_t>(hot);
        latency[core.id()] = core.now() - t0;
    });
    // Core 0 itself is fastest; the far corner is slower than a neighbour.
    CoreId corner = cfg.numCores() - 1;
    EXPECT_LT(latency[0], latency[1]);
    EXPECT_GT(latency[corner], latency[1]);
}

} // namespace
} // namespace spmrt
