/**
 * @file
 * Tests for the work-stealing and static runtimes: queue semantics, task
 * lifecycle, spawn/wait with the low-level API (the paper's Fig. 3a
 * style), stealing behaviour, termination, and barrier correctness.
 */

#include <gtest/gtest.h>

#include <set>

#include "runtime/barrier.hpp"
#include "runtime/queue_ops.hpp"
#include "runtime/static_runtime.hpp"
#include "runtime/task.hpp"
#include "runtime/ws_runtime.hpp"

namespace spmrt {
namespace {

// ---- Task registry ------------------------------------------------------

TEST(TaskRegistry, AddGetRemove)
{
    TaskRegistry registry;
    auto *task = makeClosureTask([](TaskContext &) {});
    uint32_t id = registry.add(task);
    EXPECT_NE(id, 0u);
    EXPECT_EQ(registry.get(id), task);
    EXPECT_EQ(registry.liveCount(), 1u);
    registry.remove(id);
    EXPECT_EQ(registry.liveCount(), 0u);
    delete task;
}

TEST(TaskRegistry, RecyclesIds)
{
    TaskRegistry registry;
    auto *a = makeClosureTask([](TaskContext &) {});
    auto *b = makeClosureTask([](TaskContext &) {});
    uint32_t id_a = registry.add(a);
    registry.remove(id_a);
    uint32_t id_b = registry.add(b);
    EXPECT_EQ(id_a, id_b) << "freed ids should be reused";
    registry.remove(id_b);
    delete a;
    delete b;
}

// ---- Simulated deque ----------------------------------------------------

class QueueOpsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setUpQueue(128);
    }

    void
    setUpQueue(uint32_t region_bytes)
    {
        machine_ = std::make_unique<Machine>(MachineConfig::tiny());
        Addr region = machine_->dramAlloc(region_bytes, 64);
        queue_ = QueueAddrs::inRegion(region, region_bytes);
        auto &mem = machine_->mem();
        mem.pokeAs<uint32_t>(queue_.lock, 0);
        mem.pokeAs<uint32_t>(queue_.head, 0);
        mem.pokeAs<uint32_t>(queue_.tail, 0);
    }

    std::unique_ptr<Machine> machine_;
    QueueAddrs queue_;
};

TEST_F(QueueOpsTest, RegionCarving)
{
    EXPECT_EQ(queue_.tail, queue_.head + 4);
    EXPECT_EQ(queue_.lock, queue_.head + 8);
    EXPECT_EQ(queue_.slots, queue_.head + 12);
    EXPECT_EQ(queue_.head % 8, 0u)
        << "head/tail pair must be loadable with one 8-byte access";
    // 29 slots fit, rounded down to a power of two so the circular
    // index mapping stays continuous when head/tail wrap at 2^32.
    EXPECT_EQ(queue_.capacity, 16u);
    EXPECT_TRUE(isPowerOfTwo(queue_.capacity));
}

TEST_F(QueueOpsTest, CapacityAlwaysPowerOfTwo)
{
    for (uint32_t bytes : {28u, 44u, 60u, 100u, 512u, 1000u}) {
        QueueAddrs q = QueueAddrs::inRegion(1024, bytes);
        EXPECT_TRUE(isPowerOfTwo(q.capacity)) << "region " << bytes;
        EXPECT_LE(q.capacity, (bytes - 12) / 4);
        EXPECT_GT(q.capacity * 2, (bytes - 12) / 4)
            << "rounded down further than necessary";
    }
}

TEST_F(QueueOpsTest, IndicesSurviveUint32Wraparound)
{
    // head/tail are monotonic uint32 counters; force them to within a
    // few increments of 2^32 and push the queue across the wrap. With a
    // capacity that divides 2^32 the slot mapping stays continuous, so
    // FIFO order must be preserved — this is the regression test for
    // the old non-power-of-two carving, where the mapping jumped at the
    // wrap and steals returned stale slots.
    setUpQueue(100); // 22 raw slots -> pow2 capacity 16
    ASSERT_EQ(queue_.capacity, 16u);
    const uint32_t start = 0xFFFFFFF0u; // 16 increments from wrap
    auto &mem = machine_->mem();
    mem.pokeAs<uint32_t>(queue_.head, start);
    mem.pokeAs<uint32_t>(queue_.tail, start);
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        // Fill half, drain via FIFO steals while refilling, crossing
        // the 2^32 boundary in both indices.
        uint32_t next_in = 1, next_out = 1;
        for (uint32_t i = 0; i < 8; ++i)
            ASSERT_TRUE(ops.enqueue(queue_, next_in++));
        for (uint32_t round = 0; round < 8; ++round) {
            ASSERT_TRUE(ops.enqueue(queue_, next_in++));
            ASSERT_EQ(ops.stealHead(queue_), next_out++);
            ASSERT_EQ(ops.stealHead(queue_), next_out++);
        }
        EXPECT_EQ(ops.stealHead(queue_), 0u) << "queue should be empty";
    });
    // Both indices really did wrap past zero.
    EXPECT_LT(mem.peekAs<uint32_t>(queue_.head), start);
    EXPECT_LT(mem.peekAs<uint32_t>(queue_.tail), start);
}

TEST_F(QueueOpsTest, LifoForOwnerFifoForThief)
{
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        ops.enqueue(queue_, 1);
        ops.enqueue(queue_, 2);
        ops.enqueue(queue_, 3);
        // Owner pops the most recent (LIFO)...
        EXPECT_EQ(ops.popTail(queue_), 3u);
        // ...while a thief steals the oldest (FIFO).
        EXPECT_EQ(ops.stealHead(queue_), 1u);
        EXPECT_EQ(ops.popTail(queue_), 2u);
        EXPECT_EQ(ops.popTail(queue_), 0u);
        EXPECT_EQ(ops.stealHead(queue_), 0u);
    });
}

TEST_F(QueueOpsTest, FullQueueRejectsEnqueue)
{
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        for (uint32_t i = 0; i < queue_.capacity; ++i)
            EXPECT_TRUE(ops.enqueue(queue_, i + 1));
        EXPECT_FALSE(ops.enqueue(queue_, 999));
        // Draining one slot re-opens the queue.
        EXPECT_NE(ops.stealHead(queue_), 0u);
        EXPECT_TRUE(ops.enqueue(queue_, 999));
    });
}

TEST_F(QueueOpsTest, WrapsAroundCircularBuffer)
{
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        // Push/steal more items than the capacity to force wraparound.
        for (uint32_t round = 0; round < 3 * queue_.capacity; ++round) {
            EXPECT_TRUE(ops.enqueue(queue_, round + 1));
            EXPECT_EQ(ops.stealHead(queue_), round + 1);
        }
    });
}

TEST_F(QueueOpsTest, LockExcludesConcurrentOwners)
{
    // All cores hammer the same queue; every enqueue must survive.
    // The region must hold every item: nothing drains concurrently.
    constexpr uint32_t kPerCore = 20;
    setUpQueue(12 + 4 * 256); // pow2 capacity 256 >= 8 cores * 20 items
    ASSERT_GE(queue_.capacity, kPerCore * machine_->numCores());
    machine_->run([&](Core &core) {
        QueueOps ops(core);
        for (uint32_t i = 0; i < kPerCore; ++i)
            ASSERT_TRUE(ops.enqueue(queue_, core.id() * kPerCore + i + 1));
    });
    // Drain and verify every id arrived exactly once.
    std::set<uint32_t> seen;
    machine_->run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        uint32_t id;
        while ((id = ops.stealHead(queue_)) != 0)
            EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    });
    EXPECT_EQ(seen.size(), machine_->numCores() * kPerCore);
}

// ---- Barrier -------------------------------------------------------------

TEST(SimBarrier, ReleasesAllAtLastArrival)
{
    Machine machine(MachineConfig::tiny());
    SimBarrier barrier(machine, machine.numCores());
    std::vector<Cycles> release(machine.numCores());
    machine.run([&](Core &core) {
        core.tick(10 * (core.id() + 1)); // staggered arrivals
        barrier.wait(core);
        release[core.id()] = core.now();
    });
    // Everyone is released at (approximately) the same time, and no one
    // before the slowest arrival.
    Cycles slowest_arrival = 10 * machine.numCores();
    for (Cycles r : release)
        EXPECT_GE(r, slowest_arrival);
    EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(SimBarrier, ReusableAcrossEpisodes)
{
    Machine machine(MachineConfig::tiny());
    SimBarrier barrier(machine, machine.numCores());
    int counter = 0;
    machine.run([&](Core &core) {
        for (int round = 0; round < 5; ++round) {
            if (core.id() == 0)
                ++counter;
            barrier.wait(core);
        }
    });
    EXPECT_EQ(counter, 5);
    EXPECT_EQ(barrier.episodes(), 5u);
}

// ---- Work-stealing runtime ----------------------------------------------

TEST(WorkStealing, RootOnlyRuns)
{
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    bool ran = false;
    rt.run([&](TaskContext &tc) {
        EXPECT_EQ(tc.core().id(), 0u);
        EXPECT_TRUE(tc.isDynamic());
        ran = true;
    });
    EXPECT_TRUE(ran);
}

TEST(WorkStealing, SpawnAndWaitLowLevel)
{
    // The paper's Fig. 3(a) style: explicit task objects, spawn + wait.
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr result = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(result, 0);

    rt.run([&](TaskContext &tc) {
        auto *child = makeClosureTask(
            [&](TaskContext &ctc) { ctc.core().amoAdd(result, 41); });
        child->runtimeOwned = true;
        tc.prepareChild(child);
        tc.setReadyCount(1);
        tc.spawn(child);
        tc.core().amoAdd(result, 1);
        tc.waitChildren();
    });
    EXPECT_EQ(machine.mem().peekAs<uint32_t>(result), 42u);
}

TEST(WorkStealing, StolenChildWritesParentFrame)
{
    // A spawned child writes its result into the parent's stack frame —
    // a remote-SPM store when stolen (paper Sec. 4.1's `y` example).
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    uint32_t observed = 0;
    rt.run([&](TaskContext &tc) {
        Addr slot = tc.frame().alloc(4);
        auto *child = makeClosureTask([slot](TaskContext &ctc) {
            ctc.core().store<uint32_t>(slot, 1234);
        });
        child->runtimeOwned = true;
        tc.prepareChild(child);
        tc.setReadyCount(1);
        tc.spawn(child);
        tc.waitChildren();
        observed = tc.core().load<uint32_t>(slot);
    });
    EXPECT_EQ(observed, 1234u);
}

TEST(WorkStealing, ManyChildrenAllJoin)
{
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr counter = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(counter, 0);
    constexpr uint32_t kChildren = 32;

    rt.run(
        [&](TaskContext &tc) {
            tc.setReadyCount(kChildren);
            for (uint32_t i = 0; i < kChildren; ++i) {
                auto *child = makeClosureTask([&](TaskContext &ctc) {
                    ctc.core().amoAdd(counter, 1);
                });
                child->runtimeOwned = true;
                tc.prepareChild(child);
                tc.spawn(child);
            }
            tc.waitChildren();
            // All children joined: the count must already be complete.
            EXPECT_EQ(tc.core().load<uint32_t>(counter), kChildren);
        },
        /*root_frame_bytes=*/16 + 8 * kChildren);
}

TEST(WorkStealing, WorkIsActuallyStolen)
{
    // With enough coarse tasks, at least one must execute off core 0.
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    std::set<CoreId> executors;
    rt.run(
        [&](TaskContext &tc) {
            constexpr uint32_t kChildren = 24;
            tc.setReadyCount(kChildren);
            for (uint32_t i = 0; i < kChildren; ++i) {
                auto *child = makeClosureTask([&](TaskContext &ctc) {
                    executors.insert(ctc.core().id());
                    ctc.core().tick(2000); // coarse task: time to steal
                });
                child->runtimeOwned = true;
                tc.prepareChild(child);
                tc.spawn(child);
            }
            tc.waitChildren();
        },
        /*root_frame_bytes=*/256);
    EXPECT_GT(executors.size(), 1u) << "no steals happened";
    uint64_t hits = machine.totalStat(&RuntimeStats::stealHits);
    EXPECT_GT(hits, 0u);
}

TEST(WorkStealing, NestedSpawnsJoinInOrder)
{
    // Children spawning grandchildren: the parent's wait must not return
    // before the whole subtree completes (fully-strict property).
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr counter = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(counter, 0);

    rt.run([&](TaskContext &tc) {
        constexpr uint32_t kKids = 4;
        tc.setReadyCount(kKids);
        for (uint32_t i = 0; i < kKids; ++i) {
            auto *child = makeClosureTask([&](TaskContext &ctc) {
                ctc.setReadyCount(kKids);
                for (uint32_t j = 0; j < kKids; ++j) {
                    auto *grandchild = makeClosureTask(
                        [&](TaskContext &gtc) {
                            gtc.core().amoAdd(counter, 1);
                        });
                    grandchild->runtimeOwned = true;
                    ctc.prepareChild(grandchild);
                    ctc.spawn(grandchild);
                }
                ctc.waitChildren();
            });
            child->runtimeOwned = true;
            tc.prepareChild(child);
            tc.spawn(child);
        }
        tc.waitChildren();
        EXPECT_EQ(tc.core().load<uint32_t>(counter), kKids * kKids);
    });
}

TEST(WorkStealing, QueueOverflowFallsBackToInlineExecution)
{
    // Spawn far more tasks than the 512-byte queue can hold; everything
    // must still execute exactly once.
    Machine machine(MachineConfig::tiny());
    RuntimeConfig cfg = RuntimeConfig::full();
    Machine *mp = &machine;
    WorkStealingRuntime rt(machine, cfg);
    Addr counter = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(counter, 0);
    constexpr uint32_t kChildren = 400; // > 64 queue slots

    rt.run([&](TaskContext &tc) {
        StackFrame big(tc.stack(), 8 * kChildren + 16);
        TaskContext big_tc(tc.worker(), tc.task(), big, tc.core(),
                           tc.stack());
        big_tc.setReadyCount(kChildren);
        for (uint32_t i = 0; i < kChildren; ++i) {
            auto *child = makeClosureTask(
                [mp, counter](TaskContext &ctc) {
                    ctc.core().amoAdd(counter, 1);
                });
            child->runtimeOwned = true;
            big_tc.prepareChild(child);
            big_tc.spawn(child);
        }
        big_tc.waitChildren();
    });
    EXPECT_EQ(machine.mem().peekAs<uint32_t>(counter), kChildren);
    // The degraded path must be visible in the stats, and every inlined
    // spawn still counts as an executed task.
    uint64_t inlined = machine.totalStat(&RuntimeStats::spawnsInlined);
    EXPECT_GT(inlined, 0u) << "queue never filled: test is too small";
    EXPECT_GE(machine.totalStat(&RuntimeStats::tasksExecuted), kChildren);
}

TEST(WorkStealing, DeterministicCycleCounts)
{
    auto experiment = [] {
        Machine machine(MachineConfig::tiny());
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        Addr cell = machine.dramAlloc(4);
        return rt.run([&](TaskContext &tc) {
            tc.setReadyCount(8);
            for (int i = 0; i < 8; ++i) {
                auto *child = makeClosureTask([cell](TaskContext &ctc) {
                    ctc.core().amoAdd(cell, 1);
                    ctc.core().tick(500);
                });
                child->runtimeOwned = true;
                tc.prepareChild(child);
                tc.spawn(child);
            }
            tc.waitChildren();
        });
    };
    Cycles first = experiment();
    EXPECT_EQ(first, experiment());
}

TEST(WorkStealing, AllFourPlacementVariantsWork)
{
    for (const RuntimeConfig &cfg :
         {RuntimeConfig::naive(), RuntimeConfig::queueOnly(),
          RuntimeConfig::stackOnly(), RuntimeConfig::full()}) {
        Machine machine(MachineConfig::tiny());
        WorkStealingRuntime rt(machine, cfg);
        Addr counter = machine.dramAlloc(4);
        machine.mem().pokeAs<uint32_t>(counter, 0);
        rt.run(
            [&](TaskContext &tc) {
                tc.setReadyCount(16);
                for (int i = 0; i < 16; ++i) {
                    auto *child = makeClosureTask([&](TaskContext &ctc) {
                        ctc.core().amoAdd(counter, 1);
                        ctc.core().tick(300);
                    });
                    child->runtimeOwned = true;
                    tc.prepareChild(child);
                    tc.spawn(child);
                }
                tc.waitChildren();
            },
            /*root_frame_bytes=*/160);
        EXPECT_EQ(machine.mem().peekAs<uint32_t>(counter), 16u)
            << "variant " << cfg.name();
    }
}

TEST(WorkStealing, RunTwiceOnSameRuntime)
{
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr counter = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(counter, 0);
    for (int round = 0; round < 2; ++round) {
        rt.run([&](TaskContext &tc) { tc.core().amoAdd(counter, 1); });
    }
    EXPECT_EQ(machine.mem().peekAs<uint32_t>(counter), 2u);
}

// ---- Static runtime -------------------------------------------------------

TEST(StaticRuntime, RootRunsOnCoreZero)
{
    Machine machine(MachineConfig::tiny());
    StaticRuntime rt(machine, RuntimeConfig::full());
    bool ran = false;
    rt.run([&](TaskContext &tc) {
        EXPECT_FALSE(tc.isDynamic());
        EXPECT_EQ(tc.core().id(), 0u);
        EXPECT_EQ(tc.staticNesting(), 0u);
        ran = true;
    });
    EXPECT_TRUE(ran);
}

TEST(StaticRuntime, RegionCoversWholeRangeOnce)
{
    Machine machine(MachineConfig::tiny());
    StaticRuntime rt(machine, RuntimeConfig::full());
    constexpr int64_t kN = 1000;
    std::vector<int> hits(kN, 0);
    std::vector<CoreId> executor(kN, kInvalidCore);

    rt.run([&](TaskContext &tc) {
        StaticRuntime::ChunkFn chunk = [&](TaskContext &ctc, int64_t lo,
                                           int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                ++hits[i];
                executor[i] = ctc.core().id();
                ctc.core().tick(1);
            }
        };
        rt.parallelRegion(tc, 0, kN, chunk);
    });
    std::set<CoreId> cores_used;
    for (int64_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i], 1) << "iteration " << i;
        cores_used.insert(executor[i]);
    }
    EXPECT_EQ(cores_used.size(), machine.numCores())
        << "static chunks must cover every core";
}

TEST(StaticRuntime, ChunkOfPartitionIsContiguousAndComplete)
{
    int64_t prev_end = 5;
    for (uint32_t id = 0; id < 7; ++id) {
        auto [lo, hi] = StaticRuntime::chunkOf(5, 105, id, 7);
        EXPECT_EQ(lo, prev_end);
        prev_end = hi;
    }
    EXPECT_EQ(prev_end, 105);
}

TEST(StaticRuntime, SequentialRegions)
{
    Machine machine(MachineConfig::tiny());
    StaticRuntime rt(machine, RuntimeConfig::full());
    int regions = 0;
    rt.run([&](TaskContext &tc) {
        StaticRuntime::ChunkFn chunk = [&](TaskContext &ctc, int64_t,
                                           int64_t) { ctc.core().tick(1); };
        for (int round = 0; round < 4; ++round) {
            rt.parallelRegion(tc, 0, 64, chunk);
            ++regions;
        }
    });
    EXPECT_EQ(regions, 4);
}

} // namespace
} // namespace spmrt
