/**
 * @file
 * End-to-end correctness tests for all nine paper workloads, run on the
 * simulated machine under the work-stealing runtime (and the static
 * runtime where the workload has a static implementation), across the
 * data-placement variants.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matrix/generators.hpp"
#include "workloads/bfs.hpp"
#include "workloads/cilksort.hpp"
#include "workloads/fib.hpp"
#include "workloads/mat_transpose.hpp"
#include "workloads/matmul.hpp"
#include "workloads/nqueens.hpp"
#include "workloads/pagerank.hpp"
#include "workloads/spm_transpose.hpp"
#include "workloads/spmv.hpp"
#include "workloads/uts.hpp"

namespace spmrt {
namespace workloads {
namespace {

/** The six runtime configurations of Table 1, by index. */
struct Variant
{
    bool isStatic;
    RuntimeConfig cfg;
    const char *label;
};

std::vector<Variant>
allVariants()
{
    RuntimeConfig static_dram = RuntimeConfig::naive();
    RuntimeConfig static_spm = RuntimeConfig::full();
    return {
        {true, static_dram, "static/dram-stack"},
        {true, static_spm, "static/spm-stack"},
        {false, RuntimeConfig::naive(), "ws/naive"},
        {false, RuntimeConfig::queueOnly(), "ws/spm-queue"},
        {false, RuntimeConfig::stackOnly(), "ws/spm-stack"},
        {false, RuntimeConfig::full(), "ws/full"},
    };
}

/** Run @p root under the given variant on a fresh runtime. */
Cycles
runUnder(Machine &machine, const Variant &variant,
         const std::function<void(TaskContext &)> &root,
         uint32_t user_spm_reserve = 0)
{
    RuntimeConfig cfg = variant.cfg;
    cfg.userSpmReserve = user_spm_reserve;
    if (variant.isStatic) {
        StaticRuntime rt(machine, cfg);
        return rt.run(root);
    }
    WorkStealingRuntime rt(machine, cfg);
    return rt.run(root);
}

// ---- Fib --------------------------------------------------------------------

TEST(Fib, CorrectAcrossAllWsVariants)
{
    for (const Variant &variant : allVariants()) {
        if (variant.isStatic)
            continue; // spawn-sync: no static baseline
        Machine machine(MachineConfig::tiny());
        Addr out = machine.dramAlloc(8, 8);
        runUnder(machine, variant, [&](TaskContext &tc) {
            fibKernel(tc, 13, out);
        });
        EXPECT_EQ(machine.mem().peekAs<int64_t>(out), fibReference(13))
            << variant.label;
    }
}

TEST(Fib, GeneratesExponentialTasks)
{
    Machine machine(MachineConfig::tiny());
    Addr out = machine.dramAlloc(8, 8);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { fibKernel(tc, 10, out); });
    // fib(10) has 177 calls; each non-leaf spawns one child.
    EXPECT_GT(machine.totalStat(&RuntimeStats::tasksSpawned), 80u);
}

// ---- MatMul -----------------------------------------------------------------

TEST(MatMul, CorrectOnBothRuntimes)
{
    constexpr uint32_t kN = 32;
    HostDense a = genDenseRandom(kN, kN, 100);
    HostDense b = genDenseRandom(kN, kN, 101);
    for (const Variant &variant : allVariants()) {
        if (!variant.isStatic && variant.cfg.queueInSpm !=
                variant.cfg.stackInSpm)
            continue; // spot-check the two extremes for speed
        Machine machine(MachineConfig::tiny());
        MatMulData data = matmulSetup(machine, kN, 100);
        runUnder(
            machine, variant,
            [&](TaskContext &tc) { matmulKernel(tc, data); },
            kMatMulSpmReserve);
        EXPECT_TRUE(matmulVerify(machine, data, a, b)) << variant.label;
    }
}

// ---- SpMV --------------------------------------------------------------------

TEST(SpMV, CorrectAcrossAllVariantsAndInputs)
{
    std::vector<HostCsr> inputs = {
        genCsrUniform(300, 300, 6, 200),          // balanced
        genCsrPowerLaw(300, 300, 6, 1.0, 201),    // email-like skew
        genCsrBanded(300, 12, 6, 202),            // c-58-like band
        genCsrBundle(300, 300, 6, 64, 3, 203),    // bundle1-like blocks
    };
    for (const HostCsr &input : inputs) {
        for (const Variant &variant : allVariants()) {
            Machine machine(MachineConfig::tiny());
            SpmvData data = spmvSetup(machine, input, 7);
            std::vector<float> x = spmvInputVector(machine, data);
            runUnder(machine, variant, [&](TaskContext &tc) {
                spmvKernel(tc, data);
            });
            EXPECT_TRUE(spmvVerify(machine, data, input, x))
                << variant.label;
        }
    }
}

// ---- SpMatrixTranspose --------------------------------------------------------

TEST(SpMatrixTranspose, CorrectOnBothRuntimes)
{
    HostCsr input = genCsrPowerLaw(200, 150, 5, 0.9, 300);
    for (const Variant &variant : allVariants()) {
        Machine machine(MachineConfig::tiny());
        SpmTransposeData data = spmTransposeSetup(machine, input);
        runUnder(machine, variant, [&](TaskContext &tc) {
            spmTransposeKernel(tc, data);
        });
        EXPECT_TRUE(spmTransposeVerify(machine, data, input))
            << variant.label;
    }
}

// ---- PageRank -------------------------------------------------------------------

TEST(PageRank, ConvergesToReference)
{
    HostGraph graph = genUniformRandom(400, 8, 400);
    for (const Variant &variant : allVariants()) {
        if (!variant.isStatic && !variant.cfg.stackInSpm &&
            variant.cfg.queueInSpm)
            continue; // skip one mixed variant for test time
        Machine machine(MachineConfig::tiny());
        PageRankData data = pagerankSetup(machine, graph);
        runUnder(machine, variant, [&](TaskContext &tc) {
            pagerankKernel(tc, data, 3);
        });
        EXPECT_TRUE(pagerankVerify(machine, data, graph, 3))
            << variant.label;
    }
}

TEST(PageRank, ErrorDecreasesOverIterations)
{
    HostGraph graph = genPowerLaw(300, 8, 1.0, 401);
    Machine machine(MachineConfig::tiny());
    PageRankData data = pagerankSetup(machine, graph);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    std::vector<double> errors;
    rt.run([&](TaskContext &tc) {
        for (int i = 0; i < 4; ++i)
            errors.push_back(pagerankIteration(tc, data));
    });
    ASSERT_EQ(errors.size(), 4u);
    EXPECT_LT(errors.back(), errors.front());
}

TEST(PageRank, ReportsSixKernelTimes)
{
    HostGraph graph = genUniformRandom(200, 6, 402);
    Machine machine(MachineConfig::tiny());
    PageRankData data = pagerankSetup(machine, graph);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    std::array<Cycles, kPageRankKernels> kernels{};
    rt.run([&](TaskContext &tc) {
        pagerankIteration(tc, data, &kernels);
    });
    for (Cycles cycles : kernels)
        EXPECT_GT(cycles, 0u);
    // K2 (the pull over in-edges) dominates.
    EXPECT_GT(kernels[1], kernels[2]);
    EXPECT_GT(kernels[1], kernels[4]);
}

// ---- BFS -----------------------------------------------------------------------

TEST(Bfs, CorrectOnUniformAndSkewedGraphs)
{
    std::vector<HostGraph> graphs = {
        genUniformRandom(500, 8, 500),
        genPowerLaw(500, 8, 1.0, 501),
        genBanded(500, 4, 4, 502),
    };
    for (const HostGraph &graph : graphs) {
        for (const Variant &variant : allVariants()) {
            if (variant.isStatic && &graph != &graphs[0])
                continue; // static spot-check on one input
            Machine machine(MachineConfig::tiny());
            BfsData data = bfsSetup(machine, graph, 0);
            runUnder(machine, variant, [&](TaskContext &tc) {
                bfsKernel(tc, data);
            });
            EXPECT_TRUE(bfsVerify(machine, data, graph))
                << variant.label;
        }
    }
}

TEST(Bfs, UsesBothDirections)
{
    // A dense-ish random graph flips to pull at the explosion level.
    HostGraph graph = genUniformRandom(600, 12, 503);
    Machine machine(MachineConfig::tiny());
    BfsData data = bfsSetup(machine, graph, 0);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { bfsKernel(tc, data); });
    EXPECT_TRUE(bfsVerify(machine, data, graph));
}

// ---- MatrixTranspose -------------------------------------------------------------

TEST(MatTranspose, CorrectAcrossWsVariants)
{
    constexpr uint32_t kN = 64;
    HostDense input = genDenseRandom(kN, kN, 600);
    for (const Variant &variant : allVariants()) {
        if (variant.isStatic)
            continue; // spawn-sync: no static baseline
        Machine machine(MachineConfig::tiny());
        MatTransposeData data = matTransposeSetup(machine, kN, 600);
        runUnder(machine, variant, [&](TaskContext &tc) {
            matTransposeKernel(tc, data);
        });
        EXPECT_TRUE(matTransposeVerify(machine, data, input))
            << variant.label;
    }
}

TEST(MatTranspose, NonSquarePowerOfTwoFree)
{
    // 48x48 exercises the odd split paths (half != power of two).
    constexpr uint32_t kN = 48;
    HostDense input = genDenseRandom(kN, kN, 601);
    Machine machine(MachineConfig::tiny());
    MatTransposeData data = matTransposeSetup(machine, kN, 601);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { matTransposeKernel(tc, data); });
    EXPECT_TRUE(matTransposeVerify(machine, data, input));
}

// ---- CilkSort ---------------------------------------------------------------------

TEST(CilkSort, SortsAcrossWsVariants)
{
    constexpr uint32_t kN = 4096;
    for (const Variant &variant : allVariants()) {
        if (variant.isStatic)
            continue;
        Machine machine(MachineConfig::tiny());
        CilkSortData data = cilksortSetup(machine, kN, 700);
        std::vector<uint32_t> original =
            downloadArray<uint32_t>(machine, data.data, kN);
        runUnder(machine, variant, [&](TaskContext &tc) {
            cilksortKernel(tc, data);
        });
        EXPECT_TRUE(cilksortVerify(machine, data, original))
            << variant.label;
    }
}

TEST(CilkSort, HandlesTinyAndOddSizes)
{
    for (uint32_t n : {1u, 2u, 3u, 255u, 257u, 1000u}) {
        Machine machine(MachineConfig::tiny());
        CilkSortData data = cilksortSetup(machine, n, 701);
        std::vector<uint32_t> original =
            downloadArray<uint32_t>(machine, data.data, n);
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        rt.run([&](TaskContext &tc) { cilksortKernel(tc, data); });
        EXPECT_TRUE(cilksortVerify(machine, data, original))
            << "n = " << n;
    }
}

TEST(CilkSort, SortsAlreadySortedAndReversed)
{
    for (bool reversed : {false, true}) {
        Machine machine(MachineConfig::tiny());
        constexpr uint32_t kN = 2048;
        std::vector<uint32_t> keys(kN);
        for (uint32_t i = 0; i < kN; ++i)
            keys[i] = reversed ? kN - i : i;
        CilkSortData data;
        data.n = kN;
        data.data = uploadArray(machine, keys);
        data.tmp = allocZeroArray<uint32_t>(machine, kN);
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        rt.run([&](TaskContext &tc) { cilksortKernel(tc, data); });
        EXPECT_TRUE(cilksortVerify(machine, data, keys));
    }
}

// ---- NQueens ------------------------------------------------------------------------

TEST(NQueens, CountsMatchKnownValues)
{
    for (uint32_t n : {5u, 6u, 7u}) {
        Machine machine(MachineConfig::tiny());
        NQueensData data = nqueensSetup(machine, n);
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        rt.run([&](TaskContext &tc) { nqueensKernel(tc, data); });
        EXPECT_EQ(nqueensResult(machine, data), nqueensReference(n))
            << "n = " << n;
    }
}

TEST(NQueens, EightQueensAcrossVariants)
{
    for (const Variant &variant : allVariants()) {
        if (variant.isStatic)
            continue;
        Machine machine(MachineConfig::tiny());
        NQueensData data = nqueensSetup(machine, 8);
        runUnder(machine, variant, [&](TaskContext &tc) {
            nqueensKernel(tc, data);
        });
        EXPECT_EQ(nqueensResult(machine, data), 92u) << variant.label;
    }
}

TEST(NQueens, StackHeavyWorkloadOverflowsDramStack)
{
    // With only a sliver of SPM stack, deep boards overflow to DRAM.
    Machine machine(MachineConfig::tiny());
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.userSpmReserve = 3300; // squeeze the SPM stack region
    NQueensData data = nqueensSetup(machine, 7);
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { nqueensKernel(tc, data); });
    EXPECT_EQ(nqueensResult(machine, data), nqueensReference(7));
    EXPECT_GT(machine.totalStat(&RuntimeStats::stackFramesOverflowed), 0u);
}

// ---- UTS -----------------------------------------------------------------------------

TEST(Uts, GeometricCountMatchesReference)
{
    UtsParams params = UtsParams::geometric(8, 2.5, 42);
    uint64_t expected = utsReference(params);
    ASSERT_GT(expected, 100u) << "tree too small to be interesting";
    Machine machine(MachineConfig::tiny());
    UtsData data = utsSetup(machine, params);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { utsKernel(tc, data); });
    EXPECT_EQ(utsResult(machine, data), expected);
}

TEST(Uts, BinomialCountMatchesReference)
{
    UtsParams params = UtsParams::binomial(32, 4, 0.2, 77);
    uint64_t expected = utsReference(params);
    ASSERT_GT(expected, 32u);
    Machine machine(MachineConfig::tiny());
    UtsData data = utsSetup(machine, params);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { utsKernel(tc, data); });
    EXPECT_EQ(utsResult(machine, data), expected);
}

TEST(Uts, TreeShapeIsScheduleIndependent)
{
    // The same seed must give the same node count on different machines
    // and placement variants (the splittable RNG guarantees it).
    UtsParams params = UtsParams::geometric(7, 2.0, 11);
    uint64_t expected = utsReference(params);
    for (const Variant &variant : allVariants()) {
        if (variant.isStatic)
            continue;
        Machine machine(MachineConfig::tiny());
        UtsData data = utsSetup(machine, params);
        runUnder(machine, variant, [&](TaskContext &tc) {
            utsKernel(tc, data);
        });
        EXPECT_EQ(utsResult(machine, data), expected) << variant.label;
    }
}

TEST(Uts, BinomialIsHighlyUnbalanced)
{
    UtsParams params = UtsParams::binomial(64, 4, 0.2, 99);
    // Subtree sizes under the root vary wildly: compute them on the host.
    std::vector<uint64_t> subtree_sizes;
    SplittableRng root(params.rootSeed);
    for (uint32_t c = 0; c < params.rootBranch; ++c) {
        // Count the subtree rooted at child c, depth 1.
        std::vector<std::pair<SplittableRng, uint32_t>> stack{
            {root.split(c), 1}};
        uint64_t count = 0;
        while (!stack.empty()) {
            auto [rng, depth] = stack.back();
            stack.pop_back();
            ++count;
            uint32_t kids = utsChildCount(params, rng, depth);
            for (uint32_t k = 0; k < kids; ++k)
                stack.push_back({rng.split(k), depth + 1});
        }
        subtree_sizes.push_back(count);
    }
    auto [min_it, max_it] =
        std::minmax_element(subtree_sizes.begin(), subtree_sizes.end());
    EXPECT_GE(*max_it, *min_it * 4)
        << "binomial tree should be heavily skewed";
}

} // namespace
} // namespace workloads
} // namespace spmrt
