/**
 * @file
 * ConcurrencyChecker tests: the oracle itself.
 *
 * Positive direction: healthy protocol idioms (lock handoff, AMO
 * release/acquire joins, release-store flag broadcast) must be clean.
 * Negative direction — the part end-to-end runs can never give us — a
 * deliberately broken protocol must be *caught*, and caught exactly once
 * per bug: a "forgot the lock" steal path, a write into a read-only
 * duplicated range, a foreign write into a live frame's callee-save area.
 */

#include <gtest/gtest.h>

#include <string>

#include "runtime/queue_ops.hpp"
#include "runtime/ws_runtime.hpp"
#include "sim/checker.hpp"
#include "sim/machine.hpp"
#include "spm/layout.hpp"
#include "spm/stack.hpp"
#include "workloads/fib.hpp"

namespace spmrt {
namespace {

using VK = ConcurrencyChecker::ViolationKind;

#if SPMRT_CHECKER_ENABLED
constexpr bool kCheckerCompiledIn = true;
#else
constexpr bool kCheckerCompiledIn = false;
#endif

#define REQUIRE_CHECKER() \
    do { \
        if (!kCheckerCompiledIn) \
            GTEST_SKIP() << "checker compiled out (SPMRT_CHECKER=OFF)"; \
    } while (0)

// ---- Clock/edge unit behaviour ------------------------------------------

TEST(CheckerEdges, AmoReleaseOrdersCrossCoreHandoff)
{
    REQUIRE_CHECKER();
    // The runtime's join idiom: producer writes data, amoAddRelease on a
    // flag word; consumer polls the flag with a plain load (which joins
    // the word's sync clock), then reads the data. Clean.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    Addr data = machine.dramAlloc(8, 8);
    Addr flag = machine.dramAlloc(8, 8);
    machine.mem().pokeAs<uint32_t>(flag, 0);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        core.store<uint32_t>(data, 41);
        core.amoAddRelease(flag, 1);
    };
    bodies[1] = [&](Core &core) {
        while (core.load<uint32_t>(flag) == 0)
            core.idle(16);
        EXPECT_EQ(core.load<uint32_t>(data), 41u);
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);
    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
}

TEST(CheckerEdges, UnsynchronizedHandoffIsARace)
{
    REQUIRE_CHECKER();
    // Same data flow with the synchronization removed: consumer reads the
    // word on a timer instead of a flag. Exactly one race (per-pair
    // dedupe), reported with both cores.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    Addr data = machine.dramAlloc(8, 8);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) { core.store<uint32_t>(data, 41); };
    bodies[1] = [&](Core &core) {
        core.idle(500); // "surely it's written by now"
        (void)core.load<uint32_t>(data);
        (void)core.load<uint32_t>(data); // second read: same dedup bucket
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);

    ASSERT_EQ(ck->violations().size(), 1u) << ck->report();
    const auto &v = ck->violations()[0];
    EXPECT_EQ(v.kind, VK::Race);
    EXPECT_EQ(v.addr, data);
    EXPECT_EQ(v.core, 1u);
    EXPECT_EQ(v.other, 0u);
    EXPECT_TRUE(v.otherWrote);
    EXPECT_FALSE(v.coreWrites);
    EXPECT_FALSE(v.describe().empty());
}

TEST(CheckerEdges, StoreReleaseLoadSyncPairIsExempt)
{
    REQUIRE_CHECKER();
    // The termination-flag idiom: single writer storeRelease, many
    // loadSync pollers, and data published through the release.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    Addr data = machine.dramAlloc(8, 8);
    Addr flag = machine.dramAlloc(8, 8);
    machine.mem().pokeAs<uint32_t>(flag, 0);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        core.store<uint32_t>(data, 7);
        core.storeRelease<uint32_t>(flag, 1);
    };
    for (CoreId i = 1; i < machine.numCores(); ++i) {
        bodies[i] = [&](Core &core) {
            while (core.loadSync<uint32_t>(flag) == 0)
                core.idle(16);
            EXPECT_EQ(core.load<uint32_t>(data), 7u);
        };
    }
    machine.runPerCore(bodies);
    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
}

TEST(CheckerEdges, PhaseBarrierOrdersEpisodes)
{
    REQUIRE_CHECKER();
    // Core 0 writes in episode 1; core 1 reads in episode 2 with no
    // simulated synchronization. Machine::run's clock alignment is a
    // real global barrier and must be mirrored in happens-before.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    Addr data = machine.dramAlloc(8, 8);

    std::vector<std::function<void(Core &)>> ep1(machine.numCores());
    ep1[0] = [&](Core &core) {
        core.store<uint32_t>(data, 9);
        core.fence();
    };
    for (CoreId i = 1; i < machine.numCores(); ++i)
        ep1[i] = [](Core &) {};
    machine.runPerCore(ep1);

    std::vector<std::function<void(Core &)>> ep2(machine.numCores());
    ep2[1] = [&](Core &core) {
        EXPECT_EQ(core.load<uint32_t>(data), 9u);
    };
    for (CoreId i = 0; i < machine.numCores(); ++i)
        if (i != 1)
            ep2[i] = [](Core &) {};
    machine.runPerCore(ep2);

    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
}

// ---- Negative: the forgot-the-lock steal path ---------------------------

TEST(CheckerNegative, ForgottenLockStealReportsExactlyOneRace)
{
    REQUIRE_CHECKER();
    // A thief that skips lockAcquire: it probes, then reads the slot and
    // publishes a new head with plain accesses. Its slot read is
    // unordered against the owner's locked slot write — one structured
    // Race report, and only one despite the bug touching several words
    // repeatedly (per-core-pair dedupe).
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);

    constexpr uint32_t kQueueBytes = 48;
    Addr qbase = machine.dramAlloc(kQueueBytes, 64);
    QueueAddrs q = QueueAddrs::inRegion(qbase, kQueueBytes);
    ck->registerRegion(RegionKind::Queue, qbase, kQueueBytes, 0, q.lock);
    machine.mem().pokeAs<uint32_t>(q.head, 0);
    machine.mem().pokeAs<uint32_t>(q.tail, 0);
    machine.mem().pokeAs<uint32_t>(q.lock, 0);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        QueueOps ops(core);
        for (uint32_t t = 1; t <= 4; ++t)
            ASSERT_TRUE(ops.enqueue(q, t));
    };
    bodies[1] = [&](Core &core) {
        QueueOps ops(core);
        core.idle(3000); // let the owner fill the queue first
        // --- the bug: no ops.lockAcquire(q.lock) here ---
        auto [head, tail] = ops.peek(q);
        ASSERT_NE(head, tail) << "test setup: queue unexpectedly empty";
        uint32_t id = core.load<uint32_t>(q.slots + (head % q.capacity) * 4);
        EXPECT_NE(id, 0u);
        core.store<uint32_t>(q.head, head + 1);
        // Keep "stealing"; the cascade must stay one report.
        auto [head2, tail2] = ops.peek(q);
        if (head2 != tail2) {
            (void)core.load<uint32_t>(q.slots +
                                      (head2 % q.capacity) * 4);
            core.store<uint32_t>(q.head, head2 + 1);
        }
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);

    ASSERT_EQ(ck->violations().size(), 1u)
        << "expected exactly one report:\n" << ck->report();
    const auto &v = ck->violations()[0];
    EXPECT_EQ(v.kind, VK::Race);
    EXPECT_EQ(v.core, 1u) << "the lockless thief is the offender";
    EXPECT_EQ(v.other, 0u);
    EXPECT_TRUE(v.regionKnown);
    EXPECT_EQ(v.region, RegionKind::Queue);
    EXPECT_EQ(v.coreLock, kNullAddr) << "offender held no lock";
    EXPECT_EQ(v.otherLock, q.lock) << "the owner held the queue lock";
    std::string text = v.describe();
    EXPECT_NE(text.find("QUEUE"), std::string::npos) << text;
}

TEST(CheckerPositive, LockedStealPathIsClean)
{
    REQUIRE_CHECKER();
    // The same traffic with the lock taken: no reports.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);

    constexpr uint32_t kQueueBytes = 48;
    Addr qbase = machine.dramAlloc(kQueueBytes, 64);
    QueueAddrs q = QueueAddrs::inRegion(qbase, kQueueBytes);
    ck->registerRegion(RegionKind::Queue, qbase, kQueueBytes, 0, q.lock);
    machine.mem().pokeAs<uint32_t>(q.head, 0);
    machine.mem().pokeAs<uint32_t>(q.tail, 0);
    machine.mem().pokeAs<uint32_t>(q.lock, 0);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        QueueOps ops(core);
        for (uint32_t t = 1; t <= 4; ++t)
            ASSERT_TRUE(ops.enqueue(q, t));
        (void)ops.popTail(q);
    };
    bodies[1] = [&](Core &core) {
        QueueOps ops(core);
        core.idle(3000);
        (void)ops.stealHead(q);
        (void)ops.stealHead(q);
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);
    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
}

// ---- Negative: RO_DUP write ---------------------------------------------

TEST(CheckerNegative, RoDupWriteReportsExactlyOnce)
{
    REQUIRE_CHECKER();
    // A range registered read-only-duplicated is written twice by the
    // same core: one structured RoDupWrite report (per core x range).
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    Addr env = machine.dramAlloc(32, 8);
    Addr ready = machine.dramAlloc(8, 8);
    machine.mem().pokeAs<uint32_t>(ready, 0);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        // Legitimate one-time population, then freeze and publish.
        for (uint32_t w = 0; w < 8; ++w)
            core.store<uint32_t>(env + w * 4, w);
        core.fence();
        if (ConcurrencyChecker *c = core.mem().checker())
            c->protectRange(RegionKind::RoDup, env, 32, core.id());
        core.storeRelease<uint32_t>(ready, 1);
    };
    bodies[1] = [&](Core &core) {
        while (core.loadSync<uint32_t>(ready) == 0)
            core.idle(16);
        core.store<uint32_t>(env + 4, 0xbad);  // violation
        core.store<uint32_t>(env + 12, 0xbad); // same range: deduped
        // Reads stay legal (and are ordered by the publish above).
        EXPECT_EQ(core.load<uint32_t>(env + 8), 2u);
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);

    ASSERT_EQ(ck->violations().size(), 1u)
        << "expected exactly one report:\n" << ck->report();
    const auto &v = ck->violations()[0];
    EXPECT_EQ(v.kind, VK::RoDupWrite);
    EXPECT_EQ(v.core, 1u);
    EXPECT_EQ(v.other, 0u) << "owner of the duplicated range";
    EXPECT_EQ(v.addr, env + 4);
    EXPECT_EQ(ck->countKind(VK::RoDupWrite), 1u);
    std::string text = v.describe();
    EXPECT_NE(text.find("RO_DUP"), std::string::npos) << text;
}

// ---- Negative: frame canary / overlap -----------------------------------

TEST(CheckerNegative, ForeignWriteIntoLiveFrameIsFrameCorruption)
{
    REQUIRE_CHECKER();
    // Core 0 holds a live frame; core 1 writes into its callee-save
    // area. The checker reports FrameCorruption (once), independent of
    // the canary value surviving.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    const MachineConfig &mcfg = machine.config();
    SpmLayout layout(mcfg, 0, 0);
    const AddressMap &map = machine.mem().map();
    Addr dram_stack = machine.dramAlloc(4096, 64);

    constexpr uint32_t kFrameBytes = 64;
    // push() places the frame at stackTop - frameBytes; its callee-save
    // area is the first regSaveWords words. Word 1 is protected but not
    // the canary word, so the victim's own canary check still passes.
    Addr frame_base = layout.stackTop(map, 0) - kFrameBytes;
    Addr target = frame_base + 4;

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        StackConfig scfg;
        scfg.spmLow = layout.stackLow(map, 0);
        scfg.spmTop = layout.stackTop(map, 0);
        scfg.dramBase = dram_stack;
        scfg.dramBytes = 4096;
        StackModel stack(core, scfg);
        {
            StackFrame frame(stack, kFrameBytes);
            EXPECT_EQ(frame.base(), frame_base);
            core.idle(4000); // keep the frame live while core 1 attacks
        }
    };
    bodies[1] = [&](Core &core) {
        core.idle(1000);
        core.store<uint32_t>(target, 0xdeadbeef); // violation
        core.store<uint32_t>(target, 0xdeadbeef); // deduped
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);

    ASSERT_EQ(ck->violations().size(), 1u)
        << "expected exactly one report:\n" << ck->report();
    const auto &v = ck->violations()[0];
    EXPECT_EQ(v.kind, VK::FrameCorruption);
    EXPECT_EQ(v.core, 1u);
    EXPECT_EQ(v.other, 0u) << "frame owner";
    EXPECT_EQ(v.addr, target);
}

TEST(CheckerPositive, OwnFrameWritesAndFrameReuseAreClean)
{
    REQUIRE_CHECKER();
    // A core writing its own callee-save area and reusing popped frame
    // addresses is the normal idiom and must not be flagged.
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    const MachineConfig &mcfg = machine.config();
    SpmLayout layout(mcfg, 0, 0);
    const AddressMap &map = machine.mem().map();
    Addr dram_stack = machine.dramAlloc(4096, 64);

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        StackConfig scfg;
        scfg.spmLow = layout.stackLow(map, 0);
        scfg.spmTop = layout.stackTop(map, 0);
        scfg.dramBase = dram_stack;
        scfg.dramBytes = 4096;
        StackModel stack(core, scfg);
        for (int depth = 0; depth < 3; ++depth) {
            StackFrame a(stack, 64);
            core.store<uint32_t>(a.alloc(4), 1);
            StackFrame b(stack, 64);
            core.store<uint32_t>(b.alloc(4), 2);
        }
    };
    for (CoreId i = 1; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);
    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
}

// ---- Region registry / report plumbing ----------------------------------

TEST(CheckerUnit, RegionRegistrationAndKinds)
{
    REQUIRE_CHECKER();
    ConcurrencyChecker ck(4);
    ck.registerRegion(RegionKind::Queue, 0x1000, 64, 2, 0x1008);
    ck.registerRegion(RegionKind::Ctrl, 0x1040, 8, 2);
    ck.protectRange(RegionKind::RoDup, 0x2000, 32, 1);
    ck.protectRange(RegionKind::Stack, 0x2100, 8, 1);
    ck.unprotectWithin(0x2000, 0x200); // frame pop spanning both
    // After unprotect, writes into the former ranges are not violations.
    ck.onStore(3, 0x2004, 4, 10);
    ck.onStore(3, 0x2100, 4, 11);
    EXPECT_EQ(ck.violations().size(), 0u);
    EXPECT_STREQ(regionKindName(RegionKind::RoDup), "RO_DUP");
    EXPECT_STREQ(regionKindName(RegionKind::Queue), "QUEUE");
}

TEST(CheckerUnit, ResetClearsShadowProtectionsAndDedupe)
{
    REQUIRE_CHECKER();
    ConcurrencyChecker ck(2);
    ck.protectRange(RegionKind::RoDup, 0x3000, 16, 0);
    ck.onStore(1, 0x3000, 4, 5);
    EXPECT_EQ(ck.violations().size(), 1u);
    ck.resetDynamicState();
    EXPECT_EQ(ck.violations().size(), 0u);
    EXPECT_EQ(ck.shadowWords(), 0u);
    // Dynamic protections are dropped by the reset...
    ck.onStore(1, 0x3000, 4, 6);
    EXPECT_EQ(ck.violations().size(), 0u);
    // ...and the same race can be reported again (dedupe cleared).
    ck.onStore(0, 0x4000, 4, 7);
    ck.onStore(1, 0x4000, 4, 8);
    EXPECT_EQ(ck.violations().size(), 1u);
}

// ---- Whole-runtime sanity ------------------------------------------------

TEST(CheckerRuntime, HealthyWorkStealingRunIsClean)
{
    REQUIRE_CHECKER();
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    ASSERT_NE(ck, nullptr);
    Addr out = machine.dramAlloc(8, 8);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    rt.run([&](TaskContext &tc) { workloads::fibKernel(tc, 12, out); });
    EXPECT_EQ(machine.mem().peekAs<int64_t>(out),
              workloads::fibReference(12));
    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
    EXPECT_GT(ck->shadowWords(), 0u) << "checker observed no traffic?";
}

TEST(CheckerRuntime, ArmCheckerIsNullWhenCompiledOut)
{
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    if (kCheckerCompiledIn)
        EXPECT_NE(ck, nullptr);
    else
        EXPECT_EQ(ck, nullptr);
}

} // namespace
} // namespace spmrt
