/**
 * @file
 * Chaos tests: deterministic fault injection over real workloads.
 *
 * The invariant under test is the one fault.hpp promises: perturbations
 * change only timing, so (a) every run still terminates and produces
 * bit-identical results to the fault-free run, and (b) the same
 * (workload, seed, FaultPlan) triple gives identical cycle counts across
 * fresh runs. A violation of (a) is a runtime protocol bug; a violation
 * of (b) is nondeterminism in the simulator. The suite also exercises
 * the engine watchdog, which must fire on a genuine quiescence failure
 * and stay quiet on healthy runs.
 *
 * The fault matrix itself is routed through the FleetServer: each
 * (workload, chaos seed) cell is one supervised job with the standalone
 * digest as its expected reference, and the bit-identical-replay leg
 * rides on the server's cache validation — a bypassCache recompute whose
 * digest or cycle count disagrees with the stored entry comes back as
 * digest_mismatch, so an Ok status *is* the determinism assertion.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/ws_runtime.hpp"
#include "serve/server.hpp"
#include "serve/workloads.hpp"
#include "sim/checker.hpp"
#include "sim/fault.hpp"
#include "workloads/cilksort.hpp"
#include "workloads/fib.hpp"
#include "workloads/uts.hpp"

namespace spmrt {
namespace {

using namespace spmrt::workloads;

// ---- FaultPlan unit behaviour -------------------------------------------

TEST(FaultPlan, QueriesRespectWindows)
{
    FaultPlan plan;
    plan.stallCore(2, 100, 200, 5)
        .delayLinks(1, 0, 50, 60, 7)
        .slowLlcBank(3, 10, 20, 11);

    EXPECT_EQ(plan.coreStall(2, 99), 0u);
    EXPECT_EQ(plan.coreStall(2, 100), 5u);
    EXPECT_EQ(plan.coreStall(2, 199), 5u);
    EXPECT_EQ(plan.coreStall(2, 200), 0u) << "end is exclusive";
    EXPECT_EQ(plan.coreStall(1, 150), 0u) << "other cores unaffected";

    EXPECT_EQ(plan.linkDelay(1, 0, 55), 7u);
    EXPECT_EQ(plan.linkDelay(0, 1, 55), 0u);
    EXPECT_EQ(plan.llcDelay(3, 15), 11u);
    EXPECT_EQ(plan.llcDelay(2, 15), 0u);

    EXPECT_EQ(plan.injected().coreStallCycles, 10u);
    EXPECT_EQ(plan.injected().linkDelayCycles, 7u);
    EXPECT_EQ(plan.injected().llcDelayCycles, 11u);
    plan.resetInjected();
    EXPECT_EQ(plan.injected().coreStallCycles, 0u);
}

TEST(FaultPlan, LockHolderDelayFiresPeriodically)
{
    FaultPlan plan;
    plan.delayLockHolder(4, 3, 50);
    // Acquisitions 1..6 by core 4: the 3rd and 6th are delayed.
    for (int i = 1; i <= 6; ++i) {
        Cycles extra = plan.lockHolderDelay(4);
        EXPECT_EQ(extra, i % 3 == 0 ? 50u : 0u) << "acquisition " << i;
    }
    // Another core's acquisitions never hit.
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(plan.lockHolderDelay(5), 0u);
    EXPECT_EQ(plan.injected().lockHolderHits, 2u);
    EXPECT_EQ(plan.injected().lockHolderCycles, 100u);
}

TEST(FaultPlan, ChaosFactoryIsSeedDeterministic)
{
    MachineConfig cfg = MachineConfig::tiny();
    FaultPlan a = FaultPlan::chaos(7, cfg);
    FaultPlan b = FaultPlan::chaos(7, cfg);
    FaultPlan c = FaultPlan::chaos(8, cfg);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_NE(a.describe(), c.describe());
    // Generated windows must target real resources.
    for (const auto &w : a.coreStalls())
        EXPECT_LT(w.core, cfg.numCores());
    for (const auto &w : a.linkDelays()) {
        EXPECT_LT(w.x, cfg.meshCols);
        EXPECT_LT(w.y, cfg.meshRows);
    }
    for (const auto &w : a.llcSlows())
        EXPECT_LT(w.bank, cfg.llcBanks);
}

// ---- Chaos matrix over real workloads -----------------------------------

/**
 * One timed work-stealing run, optionally perturbed by @p plan. Every
 * chaos run doubles as a race-checker run: widened critical sections and
 * shifted steal timings must leave the protocol violation-free. (The
 * checker charges no cycles, so arming it here does not disturb the
 * bit-identical-cycles assertions below.)
 */
template <typename Kernel>
Cycles
runPerturbed(Machine &machine, FaultPlan *plan, const Kernel &kernel)
{
#if SPMRT_CHECKER_ENABLED
    ConcurrencyChecker *ck = machine.armChecker();
#endif
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    if (plan != nullptr)
        machine.setFaultPlan(plan);
    Cycles cycles = rt.run([&](TaskContext &tc) { kernel(tc); });
    machine.setFaultPlan(nullptr);
#if SPMRT_CHECKER_ENABLED
    EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
#endif
    return cycles;
}

constexpr uint64_t kChaosSeeds[] = {1, 2, 3, 4};

/** Sum of all injected-delay counters of @p plan. */
uint64_t
injectedTotal(const FaultPlan &plan)
{
    const auto &s = plan.injected();
    return s.coreStallCycles + s.linkDelayCycles + s.llcDelayCycles +
           s.lockHolderCycles;
}

/**
 * Run the chaos matrix for @p spec through the fleet server: one
 * supervised job per seed (expected digest = host reference, checker
 * armed) plus a bypassCache replay that the server validates to the
 * cycle against the cached first run.
 */
void
runFleetFaultMatrix(const serve::FleetWorkload &spec, Cycles horizon)
{
    serve::FleetConfig fcfg;
    fcfg.workers = 2;
    serve::FleetServer server(fcfg);
    for (uint64_t seed : kChaosSeeds) {
        serve::JobRequest req = serve::makeWorkloadRequest(spec);
        req.faultSeed = seed;
        req.faultHorizon = horizon;
        serve::JobReport a = server.wait(server.submit(std::move(req)));
        // Ok subsumes the old per-run assertions: a wrong result
        // reports digest_mismatch, a race reports checker_violation.
        EXPECT_EQ(a.status, serve::JobStatus::Ok)
            << spec.kind << " chaos seed " << seed << ": " << a.error;

        serve::JobRequest again = serve::makeWorkloadRequest(spec);
        again.faultSeed = seed;
        again.faultHorizon = horizon;
        again.bypassCache = true;
        serve::JobReport b = server.wait(server.submit(std::move(again)));
        EXPECT_EQ(b.status, serve::JobStatus::Ok)
            << spec.kind << " nondeterministic under chaos seed " << seed
            << ": " << b.error;
        EXPECT_EQ(b.cycles, a.cycles);
    }
    EXPECT_EQ(server.totals().failures, 0u);
}

TEST(Chaos, FibBitIdenticalUnderFaultMatrix)
{
    MachineConfig mcfg = MachineConfig::tiny();
    auto run = [&](FaultPlan *plan, Cycles *cycles) {
        Machine machine(mcfg);
        Addr out = machine.dramAlloc(8, 8);
        *cycles = runPerturbed(machine, plan, [&](TaskContext &tc) {
            fibKernel(tc, 13, out);
        });
        return machine.mem().peekAs<int64_t>(out);
    };

    // Standalone base run: sets the horizon and anchors the reference.
    Cycles base_cycles = 0;
    int64_t base = run(nullptr, &base_cycles);
    EXPECT_EQ(base, fibReference(13));
    Cycles horizon = std::max<Cycles>(base_cycles, 4096);

    // One standalone perturbed run proves the plans inject something —
    // otherwise the matrix is not testing what it claims.
    FaultPlan probe = FaultPlan::chaos(kChaosSeeds[0], mcfg, horizon);
    Cycles probe_cycles = 0;
    EXPECT_EQ(run(&probe, &probe_cycles), base) << probe.describe();
    EXPECT_GT(injectedTotal(probe), 0u)
        << "no plan perturbed anything; the matrix "
           "is not testing what it claims";

    runFleetFaultMatrix({"fib", 13, 0, 0.0}, horizon);
}

TEST(Chaos, CilksortBitIdenticalUnderFaultMatrix)
{
    constexpr uint32_t kN = 600;
    Machine machine(MachineConfig::tiny());
    CilkSortData data = cilksortSetup(machine, kN, 900);
    Cycles base_cycles = runPerturbed(machine, nullptr, [&](TaskContext &tc) {
        cilksortKernel(tc, data);
    });
    std::vector<uint32_t> base =
        downloadArray<uint32_t>(machine, data.data, kN);
    EXPECT_TRUE(std::is_sorted(base.begin(), base.end()));

    runFleetFaultMatrix({"cilksort", kN, 900, 0.0},
                        std::max<Cycles>(base_cycles, 4096));
}

TEST(Chaos, UtsBitIdenticalUnderFaultMatrix)
{
    UtsParams params = UtsParams::geometric(8, 2.5, 42);
    Machine machine(MachineConfig::tiny());
    UtsData data = utsSetup(machine, params);
    Cycles base_cycles = runPerturbed(machine, nullptr, [&](TaskContext &tc) {
        utsKernel(tc, data);
    });
    EXPECT_EQ(utsResult(machine, data), utsReference(params));

    runFleetFaultMatrix({"uts", 8, 42, 2.5},
                        std::max<Cycles>(base_cycles, 4096));
}

TEST(Chaos, WholeRunStragglerSlowsRunNotResult)
{
    // A core stalled for the entire run must cost wall-clock cycles and
    // change nothing else — the injection visibly has a timing effect.
    MachineConfig mcfg = MachineConfig::tiny();
    auto run = [&](FaultPlan *plan, Cycles *cycles) {
        Machine machine(mcfg);
        Addr out = machine.dramAlloc(8, 8);
        *cycles = runPerturbed(machine, plan, [&](TaskContext &tc) {
            fibKernel(tc, 12, out);
        });
        return machine.mem().peekAs<int64_t>(out);
    };
    Cycles base_cycles = 0;
    int64_t base = run(nullptr, &base_cycles);

    FaultPlan plan;
    plan.stallCore(1, 0, ~0ull, 3); // +3 cycles on every op, forever
    Cycles slow_cycles = 0;
    EXPECT_EQ(run(&plan, &slow_cycles), base);
    EXPECT_GT(plan.injected().coreStallCycles, 0u);
    EXPECT_GT(slow_cycles, base_cycles)
        << "a permanently stalled core should lengthen the run";
}

// ---- Watchdog -----------------------------------------------------------

TEST(ChaosDeathTest, WatchdogFiresOnQuiescenceFailure)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine machine(MachineConfig::tiny());
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.watchdogCycles = 100'000;
    WorkStealingRuntime rt(machine, cfg);
    // A ready count with no matching child: the root waits forever, the
    // other cores steal-spin forever, no task ever retires. The watchdog
    // must convert this hang into a panic with a structured dump.
    EXPECT_DEATH(rt.run([](TaskContext &tc) {
        tc.setReadyCount(1);
        tc.waitChildren();
    }),
                 "watchdog");
}

TEST(Chaos, SupervisedWatchdogThrowsCatchableSimAbort)
{
    // With a supervisor installed, the same quiescence failure that
    // panics above must instead surface as a typed, catchable SimAbort
    // carrying a structured runtime dump — thrown on the host stack,
    // never across a guest coroutine.
    Machine machine(MachineConfig::tiny());
    machine.engine().supervise(true);
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.watchdogCycles = 100'000;
    WorkStealingRuntime rt(machine, cfg);
    try {
        rt.run([](TaskContext &tc) {
            tc.setReadyCount(1);
            tc.waitChildren();
        });
        FAIL() << "supervised hang did not abort";
    } catch (const SimAbort &abort) {
        EXPECT_EQ(abort.kind(), AbortKind::Hang);
        EXPECT_NE(abort.summary().find("watchdog"), std::string::npos)
            << abort.summary();
        EXPECT_FALSE(abort.dump().empty())
            << "hang aborts must carry a runtime state dump";
    }
}

TEST(Chaos, SupervisedCycleLimitThrowsBudgetAbort)
{
    Machine machine(MachineConfig::tiny());
    machine.engine().supervise(true);
    machine.engine().armCycleLimit(machine.engine().maxTime() + 1000);
    Addr out = machine.dramAlloc(8, 8);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    try {
        rt.run([&](TaskContext &tc) { fibKernel(tc, 13, out); });
        FAIL() << "cycle budget did not abort";
    } catch (const SimAbort &abort) {
        EXPECT_EQ(abort.kind(), AbortKind::CycleBudget);
        EXPECT_NE(abort.summary().find("cycle budget"), std::string::npos);
    }
}

TEST(Chaos, WatchdogStaysQuietOnHealthyRun)
{
    Machine machine(MachineConfig::tiny());
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.watchdogCycles = 1'000'000; // tight but fair for fib(12)
    Addr out = machine.dramAlloc(8, 8);
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { fibKernel(tc, 12, out); });
    EXPECT_EQ(machine.mem().peekAs<int64_t>(out), fibReference(12));
}

} // namespace
} // namespace spmrt
