/**
 * @file
 * Schedule-exploration sweep: the work-stealing protocol under seeded
 * perturbation of the engine's ready-core order, with the concurrency
 * checker armed.
 *
 * Each schedule seed is one alternative — fully reproducible —
 * interleaving of the same program: lock races resolve differently,
 * thieves hit different victims, queue occupancy histories diverge. The
 * protocol's correctness claim is that none of this is observable:
 *
 *  - the checker reports zero violations on every interleaving;
 *  - every interleaving computes the reference result;
 *  - the same seed replays to the exact cycle (determinism);
 *  - different seeds genuinely produce different interleavings
 *    (otherwise the sweep tests nothing);
 *  - arming the checker changes no cycle count (it is an observer).
 *
 * The per-seed sweep runs through the FleetServer: each seed is one
 * supervised job (checker armed, expected digest = host reference), and
 * the replay leg is the server's cache validation — a bypassCache
 * recompute that disagrees on digest or cycles reports digest_mismatch,
 * so an Ok status certifies deterministic replay.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "runtime/ws_runtime.hpp"
#include "serve/server.hpp"
#include "serve/workloads.hpp"
#include "sim/checker.hpp"
#include "workloads/cilksort.hpp"
#include "workloads/fib.hpp"
#include "workloads/nqueens.hpp"
#include "workloads/uts.hpp"

namespace spmrt {
namespace {

using namespace spmrt::workloads;

constexpr uint64_t kNumSeeds = 16;
constexpr Cycles kWindow = 8; ///< admission window around the min clock

/** Outcome of one timed run. */
struct Outcome
{
    uint64_t digest = 0; ///< workload result, order-independent
    Cycles cycles = 0;
    size_t violations = 0;
    std::string report;
};

/** FNV-1a over a result vector, so array outputs digest to one word. */
template <typename T>
uint64_t
fnvDigest(const std::vector<T> &values)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const T &v : values) {
        h ^= static_cast<uint64_t>(v);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** One workload: reference digest + a run returning digest. */
struct Workload
{
    const char *name;
    uint64_t reference;
    std::function<uint64_t(Machine &, WorkStealingRuntime &)> run;
};

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> w;

    w.push_back({"fib", static_cast<uint64_t>(fibReference(12)),
                 [](Machine &machine, WorkStealingRuntime &rt) {
                     Addr out = machine.dramAlloc(8, 8);
                     rt.run([&](TaskContext &tc) { fibKernel(tc, 12, out); });
                     return static_cast<uint64_t>(
                         machine.mem().peekAs<int64_t>(out));
                 }});

    {
        // Host-side reference sort for the digest.
        constexpr uint32_t kN = 400;
        constexpr uint64_t kDataSeed = 900;
        Machine ref_machine(MachineConfig::tiny());
        CilkSortData ref = cilksortSetup(ref_machine, kN, kDataSeed);
        std::vector<uint32_t> sorted =
            downloadArray<uint32_t>(ref_machine, ref.data, kN);
        std::sort(sorted.begin(), sorted.end());
        w.push_back({"cilksort", fnvDigest(sorted),
                     [](Machine &machine, WorkStealingRuntime &rt) {
                         CilkSortData data =
                             cilksortSetup(machine, kN, kDataSeed);
                         rt.run([&](TaskContext &tc) {
                             cilksortKernel(tc, data);
                         });
                         return fnvDigest(downloadArray<uint32_t>(
                             machine, data.data, kN));
                     }});
    }

    {
        UtsParams params = UtsParams::geometric(7, 2.2, 42);
        w.push_back({"uts", utsReference(params),
                     [params](Machine &machine, WorkStealingRuntime &rt) {
                         UtsData data = utsSetup(machine, params);
                         rt.run([&](TaskContext &tc) {
                             utsKernel(tc, data);
                         });
                         return utsResult(machine, data);
                     }});
    }

    w.push_back({"nqueens", nqueensReference(6),
                 [](Machine &machine, WorkStealingRuntime &rt) {
                     NQueensData data = nqueensSetup(machine, 6);
                     rt.run([&](TaskContext &tc) {
                         nqueensKernel(tc, data);
                     });
                     return nqueensResult(machine, data);
                 }});

    return w;
}

/** Run @p workload once; optionally perturbed, optionally checked. */
Outcome
runOnce(const Workload &workload, bool perturb, uint64_t sched_seed,
        bool armed)
{
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = armed ? machine.armChecker() : nullptr;
    if (perturb)
        machine.engine().perturbSchedule(sched_seed, kWindow);

    Outcome out;
    Cycles start = machine.engine().maxTime();
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    out.digest = workload.run(machine, rt);
    out.cycles = machine.engine().maxTime() - start;
    if (ck != nullptr) {
        out.violations = ck->violations().size();
        out.report = ck->report();
    }
    return out;
}

class ScheduleSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ScheduleSweep, SeededPerturbationIsCleanAndDeterministic)
{
#if !SPMRT_CHECKER_ENABLED
    GTEST_SKIP() << "checker compiled out (SPMRT_CHECKER=OFF)";
#endif
    static const serve::FleetWorkload kSpecs[] = {
        {"fib", 12, 0, 0.0},
        {"cilksort", 400, 900, 0.0},
        {"uts", 7, 42, 2.2},
        {"nqueens", 6, 0, 0.0},
    };
    const serve::FleetWorkload spec = kSpecs[GetParam()];
    SCOPED_TRACE(spec.kind);

    serve::FleetConfig fcfg;
    fcfg.workers = 2;
    serve::FleetServer server(fcfg);
    std::set<Cycles> distinct_cycles;
    for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        serve::JobRequest req = serve::makeWorkloadRequest(spec);
        req.scheduleSeed = seed;
        req.scheduleWindow = kWindow;
        serve::JobReport a = server.wait(server.submit(std::move(req)));
        // Ok subsumes the old assertions: a race would come back as
        // checker_violation, a wrong result as digest_mismatch.
        EXPECT_EQ(a.status, serve::JobStatus::Ok)
            << spec.kind << " seed " << seed << ": " << a.error << "\n"
            << a.dump;

        // The same seed must replay bit-identically, to the cycle: the
        // bypassCache recompute is validated against the cached run.
        serve::JobRequest again = serve::makeWorkloadRequest(spec);
        again.scheduleSeed = seed;
        again.scheduleWindow = kWindow;
        again.bypassCache = true;
        serve::JobReport b = server.wait(server.submit(std::move(again)));
        EXPECT_EQ(b.status, serve::JobStatus::Ok)
            << spec.kind << " is nondeterministic under seed " << seed
            << ": " << b.error;
        EXPECT_EQ(b.cycles, a.cycles);
        distinct_cycles.insert(a.cycles);
    }

    // The sweep must actually explore: if every seed produced the same
    // cycle count, the perturbation is a no-op and the 16 "schedules"
    // were one schedule.
    EXPECT_GE(distinct_cycles.size(), 2u)
        << spec.kind
        << ": all schedule seeds collapsed to one interleaving";
}

std::string
workloadName(const ::testing::TestParamInfo<size_t> &info)
{
    static const char *const names[] = {"fib", "cilksort", "uts", "nqueens"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ScheduleSweep,
                         ::testing::Range<size_t>(0, 4), workloadName);

TEST(ScheduleSweep, UnperturbedRunIsCleanToo)
{
#if !SPMRT_CHECKER_ENABLED
    GTEST_SKIP() << "checker compiled out (SPMRT_CHECKER=OFF)";
#endif
    for (const Workload &workload : makeWorkloads()) {
        Outcome out = runOnce(workload, false, 0, true);
        EXPECT_EQ(out.violations, 0u)
            << workload.name << ":\n" << out.report;
        EXPECT_EQ(out.digest, workload.reference) << workload.name;
    }
}

TEST(ScheduleSweep, ArmingTheCheckerChangesNoCycle)
{
    // The checker is a pure observer: with it armed and disarmed the
    // same program must take exactly the same number of cycles. This is
    // the compiled-IN zero-overhead guarantee; the SPMRT_CHECKER=OFF
    // build enforces the compiled-OUT one by construction.
    for (const Workload &workload : makeWorkloads()) {
        Outcome armed = runOnce(workload, false, 0, true);
        Outcome bare = runOnce(workload, false, 0, false);
        EXPECT_EQ(armed.cycles, bare.cycles)
            << workload.name << ": arming the checker perturbed timing";
        EXPECT_EQ(armed.digest, bare.digest) << workload.name;

        // Same under a perturbed schedule (same seed, armed vs not).
        Outcome armed_p = runOnce(workload, true, 3, true);
        Outcome bare_p = runOnce(workload, true, 3, false);
        EXPECT_EQ(armed_p.cycles, bare_p.cycles)
            << workload.name
            << ": checker perturbed a perturbed schedule";
        EXPECT_EQ(armed_p.digest, bare_p.digest) << workload.name;
    }
}

TEST(SchedulePerturbation, WindowRelaxedSyncPointStillTerminatesAlone)
{
    // A machine where only one core has a body: minOtherTime() is the
    // "alone" sentinel; the window-relaxed bound must not overflow it.
    Machine machine(MachineConfig::tiny());
    machine.engine().perturbSchedule(99, 1000);
    Addr scratch = machine.dramAlloc(8, 8);
    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [scratch](Core &core) {
        for (int i = 0; i < 64; ++i)
            core.store<uint32_t>(scratch, i);
        core.fence();
    };
    for (CoreId i = 1; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);
    EXPECT_EQ(machine.mem().peekAs<uint32_t>(scratch), 63u);
}

} // namespace
} // namespace spmrt
