/**
 * @file
 * Tests for the graph and matrix substrates: CSR construction,
 * generators' structural properties, host references, sim upload/download
 * round trips.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "matrix/generators.hpp"

namespace spmrt {
namespace {

// ---- CSR graph construction -----------------------------------------------

TEST(HostGraph, FromEdgesBuildsCsr)
{
    HostGraph graph = HostGraph::fromEdges(
        4, {{0, 1}, {0, 2}, {1, 3}, {3, 0}, {3, 1}});
    EXPECT_EQ(graph.numVertices, 4u);
    EXPECT_EQ(graph.numEdges(), 5u);
    EXPECT_EQ(graph.degree(0), 2u);
    EXPECT_EQ(graph.degree(1), 1u);
    EXPECT_EQ(graph.degree(2), 0u);
    EXPECT_EQ(graph.degree(3), 2u);
    EXPECT_EQ(graph.targets[graph.offsets[1]], 3u);
}

TEST(HostGraph, TransposeInvertsEdges)
{
    HostGraph graph =
        HostGraph::fromEdges(3, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
    HostGraph reverse = graph.transpose();
    EXPECT_EQ(reverse.numEdges(), graph.numEdges());
    EXPECT_EQ(reverse.degree(1), 1u); // only 0->1
    EXPECT_EQ(reverse.degree(2), 2u); // 1->2 and 0->2
    // Double transpose is the identity.
    HostGraph twice = reverse.transpose();
    EXPECT_EQ(twice.offsets, graph.offsets);
    EXPECT_EQ(twice.targets, graph.targets);
}

// ---- graph generators ------------------------------------------------------

TEST(Generators, UniformRandomHasExactDegrees)
{
    HostGraph graph = genUniformRandom(256, 8, 1);
    EXPECT_EQ(graph.numVertices, 256u);
    EXPECT_EQ(graph.numEdges(), 256u * 8u);
    for (uint32_t v = 0; v < graph.numVertices; ++v)
        EXPECT_EQ(graph.degree(v), 8u);
}

TEST(Generators, UniformRandomDeterministicBySeed)
{
    HostGraph a = genUniformRandom(128, 4, 7);
    HostGraph b = genUniformRandom(128, 4, 7);
    HostGraph c = genUniformRandom(128, 4, 8);
    EXPECT_EQ(a.targets, b.targets);
    EXPECT_NE(a.targets, c.targets);
}

TEST(Generators, PowerLawIsSkewed)
{
    HostGraph graph = genPowerLaw(1024, 8, 1.0, 3);
    // Average degree near the request; max degree far above it.
    double average = static_cast<double>(graph.numEdges()) /
                     graph.numVertices;
    EXPECT_GT(average, 4.0);
    EXPECT_LT(average, 16.0);
    EXPECT_GT(graph.maxDegree(), 8u * 10u)
        << "power-law tail should dwarf the mean";
}

TEST(Generators, RmatProducesSkewAndCorrectCounts)
{
    HostGraph graph = genRmat(10, 8, 5);
    EXPECT_EQ(graph.numVertices, 1024u);
    EXPECT_EQ(graph.numEdges(), 1024u * 8u);
    EXPECT_GT(graph.maxDegree(), 16u);
}

TEST(Generators, BandedStaysInBand)
{
    constexpr uint32_t kN = 512, kBand = 10;
    HostGraph graph = genBanded(kN, kBand, 6, 11);
    for (uint32_t v = 0; v < kN; ++v) {
        for (uint32_t e = graph.offsets[v]; e < graph.offsets[v + 1];
             ++e) {
            uint32_t w = graph.targets[e];
            uint32_t distance = v > w ? v - w : w - v;
            uint32_t wrapped = kN - distance;
            EXPECT_LE(std::min(distance, wrapped), kBand)
                << "edge (" << v << "," << w << ") leaves the band";
        }
    }
}

TEST(Generators, BlockBipartiteHasDenseMinority)
{
    HostGraph graph = genBlockBipartite(1000, 10, 200, 4, 13);
    uint32_t dense_count = 0;
    for (uint32_t v = 0; v < graph.numVertices; ++v)
        if (graph.degree(v) >= 100)
            ++dense_count;
    EXPECT_EQ(dense_count, 10u);
}

// ---- sim upload / download -------------------------------------------------

TEST(SimGraph, UploadPreservesStructure)
{
    MachineConfig cfg = MachineConfig::tiny();
    Machine machine(cfg);
    HostGraph graph = genUniformRandom(64, 4, 2);
    SimGraph sim = SimGraph::upload(machine, graph);
    EXPECT_EQ(sim.numVertices, graph.numVertices);
    EXPECT_EQ(sim.numEdges, graph.numEdges());
    auto offsets = downloadArray<uint32_t>(machine, sim.outOffsets,
                                           graph.numVertices + 1);
    EXPECT_EQ(offsets, graph.offsets);
    auto targets = downloadArray<uint32_t>(machine, sim.outTargets,
                                           graph.numEdges());
    EXPECT_EQ(targets, graph.targets);
}

// ---- matrices ---------------------------------------------------------------

TEST(HostDense, MultiplyReference)
{
    HostDense a(2, 3), b(3, 2);
    // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
    float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(std::begin(av), std::end(av), a.data.begin());
    std::copy(std::begin(bv), std::end(bv), b.data.begin());
    HostDense c = a.multiply(b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.f);
}

TEST(HostDense, TransposeReference)
{
    HostDense a = genDenseRandom(5, 9, 3);
    HostDense t = a.transposed();
    EXPECT_EQ(t.rows, 9u);
    EXPECT_EQ(t.cols, 5u);
    for (uint32_t r = 0; r < a.rows; ++r)
        for (uint32_t c = 0; c < a.cols; ++c)
            EXPECT_EQ(a.at(r, c), t.at(c, r));
}

TEST(HostCsr, MultiplyMatchesDense)
{
    HostCsr sparse = genCsrUniform(32, 24, 5, 9);
    std::vector<float> x(24);
    Xoshiro256StarStar rng(4);
    for (float &value : x)
        value = static_cast<float>(rng.nextDouble());
    std::vector<float> y = sparse.multiply(x);

    // Cross-check against an explicit dense expansion.
    for (uint32_t r = 0; r < sparse.rows; ++r) {
        float expected = 0;
        for (uint32_t e = sparse.rowPtr[r]; e < sparse.rowPtr[r + 1]; ++e)
            expected += sparse.values[e] * x[sparse.colIdx[e]];
        EXPECT_FLOAT_EQ(y[r], expected);
    }
}

TEST(HostCsr, TransposeRoundTrip)
{
    HostCsr a = genCsrUniform(40, 30, 6, 17);
    HostCsr tt = a.transposed().transposed();
    EXPECT_EQ(tt.rowPtr, a.rowPtr);
    EXPECT_EQ(tt.colIdx, a.colIdx);
    EXPECT_EQ(tt.values, a.values);
}

TEST(CsrGenerators, UniformRowCounts)
{
    HostCsr csr = genCsrUniform(100, 80, 7, 21);
    for (uint32_t r = 0; r < csr.rows; ++r)
        EXPECT_EQ(csr.rowNnz(r), 7u);
    // Columns must be sorted and unique within a row.
    for (uint32_t r = 0; r < csr.rows; ++r)
        for (uint32_t e = csr.rowPtr[r] + 1; e < csr.rowPtr[r + 1]; ++e)
            EXPECT_LT(csr.colIdx[e - 1], csr.colIdx[e]);
}

TEST(CsrGenerators, PowerLawRowsAreSkewed)
{
    HostCsr csr = genCsrPowerLaw(1024, 1024, 8, 1.0, 23);
    uint32_t max_nnz = 0;
    for (uint32_t r = 0; r < csr.rows; ++r)
        max_nnz = std::max(max_nnz, csr.rowNnz(r));
    EXPECT_GT(max_nnz, 60u);
}

TEST(CsrGenerators, BandedStaysInBand)
{
    HostCsr csr = genCsrBanded(256, 8, 5, 31);
    for (uint32_t r = 0; r < csr.rows; ++r)
        for (uint32_t e = csr.rowPtr[r]; e < csr.rowPtr[r + 1]; ++e) {
            uint32_t c = csr.colIdx[e];
            uint32_t distance = r > c ? r - c : c - r;
            EXPECT_LE(distance, 8u);
        }
}

TEST(CsrGenerators, BundleHasDenseRows)
{
    HostCsr csr = genCsrBundle(512, 512, 8, 128, 4, 37);
    uint32_t dense_count = 0;
    for (uint32_t r = 0; r < csr.rows; ++r)
        if (csr.rowNnz(r) >= 64)
            ++dense_count;
    EXPECT_EQ(dense_count, 8u);
}

TEST(SimDense, UploadDownloadRoundTrip)
{
    Machine machine(MachineConfig::tiny());
    HostDense host = genDenseRandom(12, 17, 5);
    SimDense sim = SimDense::upload(machine, host);
    HostDense back = sim.download(machine);
    EXPECT_EQ(back.data, host.data);
}

TEST(SimCsr, UploadDownloadRoundTrip)
{
    Machine machine(MachineConfig::tiny());
    HostCsr host = genCsrUniform(20, 20, 4, 6);
    SimCsr sim = SimCsr::upload(machine, host);
    HostCsr back = sim.download(machine);
    EXPECT_EQ(back.rowPtr, host.rowPtr);
    EXPECT_EQ(back.colIdx, host.colIdx);
    EXPECT_EQ(back.values, host.values);
}

} // namespace
} // namespace spmrt
