/**
 * @file
 * Property-based tests: randomized operation sequences checked against
 * reference models, and parameterized sweeps of invariants across
 * configurations (gtest TEST_P).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "mem/alloc.hpp"
#include "mem/fluid_server.hpp"
#include "mem/noc.hpp"
#include "parallel/patterns.hpp"
#include "runtime/queue_ops.hpp"
#include "sim/checker.hpp"
#include "spm/stack.hpp"

namespace spmrt {
namespace {

// ---- Task deque vs. reference model ----------------------------------------

class DequeModelTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DequeModelTest, RandomOpsMatchReferenceDeque)
{
    // Drive the simulated lock-protected deque with a random sequence of
    // enqueue / popTail / stealHead and mirror every operation in a
    // std::deque; contents must match at every step.
    Machine machine(MachineConfig::tiny());
    Addr region = machine.dramAlloc(256, 64);
    QueueAddrs queue = QueueAddrs::inRegion(region, 256);
    auto &mem = machine.mem();
    mem.pokeAs<uint32_t>(queue.lock, 0);
    mem.pokeAs<uint32_t>(queue.head, 0);
    mem.pokeAs<uint32_t>(queue.tail, 0);

    uint64_t seed = GetParam();
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        std::deque<uint32_t> model;
        Xoshiro256StarStar rng(seed);
        uint32_t next_id = 1;
        for (int step = 0; step < 500; ++step) {
            switch (rng.nextBounded(3)) {
              case 0: // enqueue at tail
                if (ops.enqueue(queue, next_id)) {
                    model.push_back(next_id);
                    ++next_id;
                } else {
                    ASSERT_EQ(model.size(), queue.capacity);
                }
                break;
              case 1: { // owner pop (LIFO)
                uint32_t got = ops.popTail(queue);
                if (model.empty()) {
                    ASSERT_EQ(got, 0u);
                } else {
                    ASSERT_EQ(got, model.back());
                    model.pop_back();
                }
                break;
              }
              default: { // thief steal (FIFO)
                uint32_t got = ops.stealHead(queue);
                if (model.empty()) {
                    ASSERT_EQ(got, 0u);
                } else {
                    ASSERT_EQ(got, model.front());
                    model.pop_front();
                }
                break;
              }
            }
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DequeModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- QueueAddrs layout properties ------------------------------------------

TEST(QueueAddrsProperties, CarvingInvariantsAcrossRegionSizes)
{
    // For any region size, the carving must produce the documented fixed
    // offsets and the largest power-of-two slot count that fits — the
    // power of two is what keeps "index % capacity" continuous across the
    // 2^32 index wrap.
    Xoshiro256StarStar rng(4242);
    for (int trial = 0; trial < 200; ++trial) {
        uint32_t bytes = 28 + static_cast<uint32_t>(rng.nextBounded(4069));
        Addr base = static_cast<Addr>(8 * (1 + rng.nextBounded(1'000'000)));
        QueueAddrs q = QueueAddrs::inRegion(base, bytes);
        ASSERT_EQ(q.head, base);
        ASSERT_EQ(q.tail, base + 4);
        ASSERT_EQ(q.lock, base + 8);
        ASSERT_EQ(q.slots, base + 12);
        ASSERT_GE(q.capacity, 4u) << "bytes=" << bytes;
        ASSERT_EQ(q.capacity & (q.capacity - 1), 0u)
            << "capacity " << q.capacity << " is not a power of two";
        // Largest that fits: capacity slots fit, double would not.
        ASSERT_LE(12 + q.capacity * 4, bytes);
        ASSERT_GT(q.capacity * 2, (bytes - 12) / 4);
        // 2^32 is divisible by the capacity (wrap continuity).
        ASSERT_EQ((uint64_t(1) << 32) % q.capacity, 0u);
    }
}

// ---- Deque model across the 2^32 index wrap --------------------------------

class DequeWrapTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DequeWrapTest, RandomOpsMatchReferenceAcrossIndexWrap)
{
    // Same model check as above, but head and tail start 16 increments
    // below 2^32 so the monotonically increasing indices wrap mid-test:
    // fullness tests (tail - head) and slot mapping (index % capacity)
    // must behave identically on both sides of the wrap.
    constexpr uint32_t kStart = 0xFFFF'FFF0u;
    Machine machine(MachineConfig::tiny());
    Addr region = machine.dramAlloc(48, 64);
    QueueAddrs queue = QueueAddrs::inRegion(region, 48);
    ASSERT_EQ(queue.capacity, 8u);
    auto &mem = machine.mem();
    mem.pokeAs<uint32_t>(queue.lock, 0);
    mem.pokeAs<uint32_t>(queue.head, kStart);
    mem.pokeAs<uint32_t>(queue.tail, kStart);

    uint64_t seed = GetParam();
    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        QueueOps ops(core);
        std::deque<uint32_t> model;
        Xoshiro256StarStar rng(seed);
        uint32_t next_id = 1;
        for (int step = 0; step < 500; ++step) {
            switch (rng.nextBounded(3)) {
              case 0:
                if (ops.enqueue(queue, next_id)) {
                    model.push_back(next_id);
                    ++next_id;
                } else {
                    ASSERT_EQ(model.size(), queue.capacity)
                        << "false 'full' at step " << step;
                }
                break;
              case 1: {
                uint32_t got = ops.popTail(queue);
                if (model.empty()) {
                    ASSERT_EQ(got, 0u);
                } else {
                    ASSERT_EQ(got, model.back()) << "at step " << step;
                    model.pop_back();
                }
                break;
              }
              default: {
                uint32_t got = ops.stealHead(queue);
                if (model.empty()) {
                    ASSERT_EQ(got, 0u);
                } else {
                    ASSERT_EQ(got, model.front()) << "at step " << step;
                    model.pop_front();
                }
                break;
              }
            }
        }
    });
    // The indices really crossed the wrap (they only ever increase).
    EXPECT_LT(mem.peekAs<uint32_t>(queue.head), kStart);
    EXPECT_LT(mem.peekAs<uint32_t>(queue.tail), kStart);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DequeWrapTest,
                         ::testing::Values(55, 89, 144, 233));

// ---- Concurrent owner/thief vs. reference set ------------------------------

class ConcurrentDequeTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ConcurrentDequeTest, OwnerAndThiefLoseAndDuplicateNothing)
{
    // A real two-core interleaving: the owner mixes enqueues and LIFO
    // pops while a thief steals FIFO concurrently, with the concurrency
    // checker armed and (for nonzero seeds) the engine's schedule
    // perturbed. Every enqueued id must be consumed exactly once by
    // exactly one side, and the protocol must be violation-free.
    uint64_t sched_seed = GetParam();
    Machine machine(MachineConfig::tiny());
    ConcurrencyChecker *ck = machine.armChecker();
    if (sched_seed != 0)
        machine.engine().perturbSchedule(sched_seed, 8);

    constexpr uint32_t kQueueBytes = 128;
    Addr region = machine.dramAlloc(kQueueBytes, 64);
    QueueAddrs queue = QueueAddrs::inRegion(region, kQueueBytes);
    if (ck != nullptr)
        ck->registerRegion(RegionKind::Queue, region, kQueueBytes, 0,
                           queue.lock);
    auto &mem = machine.mem();
    mem.pokeAs<uint32_t>(queue.lock, 0);
    mem.pokeAs<uint32_t>(queue.head, 0);
    mem.pokeAs<uint32_t>(queue.tail, 0);

    constexpr uint32_t kIds = 200;
    bool owner_done = false; // host-side; the DES host is single-threaded
    std::vector<uint32_t> owner_got, thief_got;

    std::vector<std::function<void(Core &)>> bodies(machine.numCores());
    bodies[0] = [&](Core &core) {
        QueueOps ops(core);
        Xoshiro256StarStar rng(7 + sched_seed);
        uint32_t next_id = 1;
        while (next_id <= kIds) {
            if (rng.nextBounded(3) != 0) {
                if (ops.enqueue(queue, next_id))
                    ++next_id;
                else
                    core.idle(64); // full: let the thief make room
            } else {
                uint32_t got = ops.popTail(queue);
                if (got != 0)
                    owner_got.push_back(got);
            }
        }
        // Drain what's left so the final accounting is exact.
        for (uint32_t got = ops.popTail(queue); got != 0;
             got = ops.popTail(queue))
            owner_got.push_back(got);
        owner_done = true;
    };
    bodies[1] = [&](Core &core) {
        QueueOps ops(core);
        while (!owner_done || !ops.emptyUntimed(core.mem(), queue)) {
            uint32_t got = ops.stealHead(queue);
            if (got != 0)
                thief_got.push_back(got);
            else
                core.idle(32);
        }
    };
    for (CoreId i = 2; i < machine.numCores(); ++i)
        bodies[i] = [](Core &) {};
    machine.runPerCore(bodies);

    if (ck != nullptr) {
        EXPECT_EQ(ck->violations().size(), 0u) << ck->report();
    }
    EXPECT_TRUE(QueueOps(machine.core(0)).emptyUntimed(mem, queue));

    // No loss, no duplication: the union of both sides is exactly 1..kIds.
    std::vector<uint32_t> all(owner_got);
    all.insert(all.end(), thief_got.begin(), thief_got.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), kIds)
        << owner_got.size() << " popped + " << thief_got.size()
        << " stolen";
    for (uint32_t i = 0; i < kIds; ++i)
        ASSERT_EQ(all[i], i + 1) << "id " << i + 1 << " lost or duplicated";
    EXPECT_FALSE(thief_got.empty())
        << "the thief never stole anything; the test exercised nothing";
}

INSTANTIATE_TEST_SUITE_P(SchedSeeds, ConcurrentDequeTest,
                         ::testing::Values(0, 1, 2, 3, 4));

// ---- Fluid server ------------------------------------------------------------

TEST(FluidServer, NoDelayBelowCapacity)
{
    FluidServer server(1);
    for (Cycles t = 0; t < 1000; t += 2)
        EXPECT_EQ(server.charge(t, 1), 0u) << "at t=" << t;
}

TEST(FluidServer, BacklogGrowsUnderOverload)
{
    FluidServer server(1);
    Cycles last_delay = 0;
    for (Cycles t = 0; t < 100; ++t) {
        Cycles delay = server.charge(t, 3); // 3 units/cycle into rate 1
        EXPECT_GE(delay, last_delay);
        last_delay = delay;
    }
    EXPECT_GE(last_delay, 150u);
}

TEST(FluidServer, BacklogDrainsDuringIdle)
{
    FluidServer server(1);
    for (Cycles t = 0; t < 50; ++t)
        server.charge(t, 4);
    EXPECT_GT(server.backlogUnits(), 100u);
    // A long idle gap drains everything.
    EXPECT_EQ(server.charge(10'000, 1), 0u);
}

TEST(FluidServer, OutOfOrderArrivalsDoNotCrash)
{
    // Arrivals slightly in the past must not drain backlog backwards.
    FluidServer server(1);
    server.charge(100, 10);
    Cycles delay_at_past_time = server.charge(90, 1);
    EXPECT_GE(delay_at_past_time, 10u);
}

TEST(FluidServer, HigherRateDrainsFaster)
{
    FluidServer slow(1), fast(4);
    Cycles slow_delay = 0, fast_delay = 0;
    for (Cycles t = 0; t < 100; ++t) {
        slow_delay = slow.charge(t, 2);
        fast_delay = fast.charge(t, 2);
    }
    EXPECT_GT(slow_delay, fast_delay);
    EXPECT_EQ(fast_delay, 0u);
}

// ---- Allocator stress -----------------------------------------------------------

class AllocatorStressTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AllocatorStressTest, RandomAllocFreeKeepsInvariants)
{
    constexpr Addr kBase = 0x4000'0000;
    constexpr uint64_t kBytes = 1 << 16;
    RangeAllocator heap(kBase, kBytes);
    Xoshiro256StarStar rng(GetParam());
    std::map<Addr, uint32_t> live; // addr -> size

    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.nextBounded(2) == 0) {
            auto size = static_cast<uint32_t>(1 + rng.nextBounded(512));
            uint32_t align = 1u << rng.nextBounded(7);
            Addr addr = heap.alloc(size, align);
            if (addr == kNullAddr)
                continue; // fragmentation; fine
            EXPECT_EQ(addr % align, 0u);
            EXPECT_GE(addr, kBase);
            EXPECT_LE(addr + size, kBase + kBytes);
            // No overlap with any live block.
            auto next = live.lower_bound(addr);
            if (next != live.end()) {
                EXPECT_LE(addr + size, next->first);
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                EXPECT_LE(prev->first + prev->second, addr);
            }
            live[addr] = size;
        } else {
            auto victim = live.begin();
            std::advance(victim, rng.nextBounded(live.size()));
            heap.release(victim->first);
            live.erase(victim);
        }
    }
    // Free everything: the heap must recover to a single block.
    for (auto &[addr, size] : live)
        heap.release(addr);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    EXPECT_NE(heap.alloc(kBytes, 8), kNullAddr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorStressTest,
                         ::testing::Values(11, 22, 33, 44));

// ---- Stack model stress -----------------------------------------------------------

class StackStressTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(StackStressTest, RandomPushPopTracksResidency)
{
    Machine machine(MachineConfig::tiny());
    Addr dram_buf = machine.dramAlloc(64 * 1024, 64);
    StackConfig cfg;
    Addr base = machine.mem().map().spmBase(0);
    constexpr uint32_t kSpmStack = 512;
    cfg.spmLow = base;
    cfg.spmTop = base + kSpmStack;
    cfg.dramBase = dram_buf;
    cfg.dramBytes = 64 * 1024;
    uint64_t seed = GetParam();

    machine.run([&](Core &core) {
        if (core.id() != 0)
            return;
        StackModel stack(core, cfg);
        Xoshiro256StarStar rng(seed);
        std::vector<uint32_t> sizes;
        uint32_t spm_used = 0;
        for (int step = 0; step < 600; ++step) {
            bool push = sizes.empty() ||
                        (sizes.size() < 80 && rng.nextBounded(2) == 0);
            if (push) {
                auto bytes = static_cast<uint32_t>(
                    8 + 8 * rng.nextBounded(12));
                Addr frame = stack.push(bytes);
                sizes.push_back(bytes);
                // Model the residency rule: SPM iff it fits below top.
                bool expect_spm = spm_used + bytes <= kSpmStack;
                EXPECT_EQ(!stack.topInDram(), expect_spm);
                if (expect_spm) {
                    spm_used += bytes;
                    EXPECT_GE(frame, cfg.spmLow);
                    EXPECT_LT(frame, cfg.spmTop);
                } else {
                    EXPECT_TRUE(
                        machine.mem().map().isDram(frame));
                }
            } else {
                uint32_t bytes = sizes.back();
                bool was_spm = !stack.topInDram();
                stack.pop();
                sizes.pop_back();
                if (was_spm)
                    spm_used -= bytes;
            }
        }
        EXPECT_EQ(stack.depth(), sizes.size());
    });
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackStressTest,
                         ::testing::Values(7, 77, 777));

// ---- NoC properties -------------------------------------------------------------

TEST(NocProperties, UnloadedLatencyMonotonicInDistance)
{
    MachineConfig cfg;
    cfg.rucheX = 0; // plain mesh: strict hop-count monotonicity
    NocEndpoint origin{0, 0};
    Cycles previous = 0;
    for (uint32_t x = 1; x < cfg.meshCols; ++x) {
        MeshNoc noc(cfg); // fresh: unloaded
        Cycles t = noc.traverse(origin, NocEndpoint{x, 0}, 0, 4);
        EXPECT_GT(t, previous) << "at distance " << x;
        previous = t;
    }
}

TEST(NocProperties, DeterministicGivenSameSequence)
{
    MachineConfig cfg;
    auto run_once = [&cfg] {
        MeshNoc noc(cfg);
        Xoshiro256StarStar rng(5);
        Cycles last = 0;
        for (int i = 0; i < 500; ++i) {
            CoreId a = static_cast<CoreId>(
                rng.nextBounded(cfg.numCores()));
            CoreId b = static_cast<CoreId>(
                rng.nextBounded(cfg.numCores()));
            last = noc.traverse(noc.coreEndpoint(a), noc.coreEndpoint(b),
                                i, 4);
        }
        return last;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(NocProperties, ResetRestoresUnloadedLatency)
{
    MachineConfig cfg;
    MeshNoc noc(cfg);
    NocEndpoint a = noc.coreEndpoint(0);
    NocEndpoint b = noc.coreEndpoint(cfg.numCores() - 1);
    Cycles fresh = noc.traverse(a, b, 0, 4);
    for (int i = 0; i < 1000; ++i)
        noc.traverse(a, b, 0, 4); // pile up backlog
    noc.reset();
    EXPECT_EQ(noc.traverse(a, b, 0, 4), fresh);
    EXPECT_EQ(noc.packetsRouted(), 1u);
}

TEST(NocProperties, CongestionLocalizedToHotPath)
{
    // Hammering core 0 must not slow a disjoint far-corner route.
    MachineConfig cfg;
    MeshNoc noc(cfg);
    NocEndpoint far_a = noc.coreEndpoint(cfg.coreAt(14, 6));
    NocEndpoint far_b = noc.coreEndpoint(cfg.coreAt(15, 6));
    Cycles before = noc.traverse(far_a, far_b, 0, 4);
    NocEndpoint hot = noc.coreEndpoint(0);
    for (CoreId c = 1; c < cfg.numCores(); ++c)
        noc.traverse(noc.coreEndpoint(c), hot, 0, 4);
    Cycles after = noc.traverse(far_a, far_b, 1, 4);
    EXPECT_LE(after, before + 2);
}

// ---- LLC index hashing -------------------------------------------------------------

TEST(LlcProperties, StridedStacksDoNotThrashOneSet)
{
    // 128 blocks 256 KB apart (the per-core overflow stacks) must spread
    // across sets: re-touching them all must mostly hit.
    MachineConfig cfg; // full LLC: 32 banks x 64 sets x 8 ways
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    constexpr uint64_t kStride = 256 * 1024;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t i = 0; i < 128; ++i)
            llc.access(pass * 100000, i * kStride, 4, false);
    EXPECT_EQ(llc.misses(), 128u)
        << "second pass must hit: index hashing failed";
    EXPECT_EQ(llc.hits(), 128u);
}

TEST(LlcProperties, CapacityEviction)
{
    MachineConfig cfg = MachineConfig::tiny();
    DramModel dram(cfg);
    LlcModel llc(cfg, dram);
    // Touch twice the LLC capacity of distinct lines; all must miss.
    uint64_t capacity_lines = static_cast<uint64_t>(cfg.llcBanks) *
                              cfg.llcSetsPerBank * cfg.llcWays;
    for (uint64_t i = 0; i < 2 * capacity_lines; ++i)
        llc.access(0, i * cfg.llcLineBytes, 4, false);
    EXPECT_EQ(llc.misses(), 2 * capacity_lines);
    EXPECT_EQ(llc.hits(), 0u);
}

// ---- parallel pattern sweeps ---------------------------------------------------------

struct SweepParam
{
    int64_t n;
    int64_t grain;
    bool dynamic;
};

class PatternSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(PatternSweep, ReduceSumAlwaysExact)
{
    SweepParam param = GetParam();
    Machine machine(MachineConfig::tiny());
    int64_t result = 0;
    auto root = [&](TaskContext &tc) {
        ForOptions opts;
        opts.grain = param.grain;
        result = parallelReduce<int64_t>(
            tc, 0, param.n, 0,
            [](TaskContext &, int64_t i) { return 2 * i + 1; },
            [](int64_t a, int64_t b) { return a + b; }, opts);
    };
    if (param.dynamic) {
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        rt.run(root);
    } else {
        StaticRuntime rt(machine, RuntimeConfig::full());
        rt.run(root);
    }
    EXPECT_EQ(result, param.n * param.n); // sum of first n odd numbers
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PatternSweep,
    ::testing::Values(SweepParam{1, 1, true}, SweepParam{2, 1, true},
                      SweepParam{7, 2, true}, SweepParam{63, 1, true},
                      SweepParam{64, 64, true}, SweepParam{100, 7, true},
                      SweepParam{1000, 0, true}, SweepParam{1, 1, false},
                      SweepParam{63, 1, false},
                      SweepParam{1000, 0, false}),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        return std::string(info.param.dynamic ? "ws" : "st") + "_n" +
               std::to_string(info.param.n) + "_g" +
               std::to_string(info.param.grain);
    });

// ---- runtime determinism sweep -----------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DeterminismSweep, IdenticalCyclesAcrossRepeats)
{
    uint64_t seed = GetParam();
    auto experiment = [seed] {
        Machine machine(MachineConfig::tiny());
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        Addr cells = machine.dramAllocArray<uint32_t>(64);
        Cycles cycles = rt.run([&](TaskContext &tc) {
            ForOptions opts;
            opts.grain = 1;
            parallelFor(
                tc, 0, 64,
                [&, seed](TaskContext &btc, int64_t i) {
                    uint64_t mix = hash64(seed ^ static_cast<uint64_t>(i));
                    btc.core().tick(1 + mix % 97);
                    btc.core().amoAdd(cells + (i % 64) * 4, 1);
                },
                opts);
        });
        return std::make_pair(cycles, machine.totalInstructions());
    };
    auto first = experiment();
    EXPECT_EQ(first, experiment());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

} // namespace
} // namespace spmrt
