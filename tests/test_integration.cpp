/**
 * @file
 * Integration tests across modules: multi-kernel sequences on one
 * machine, machine/runtime reuse, active-core scaling, configuration
 * equivalences (placement variants must change timing, never results),
 * and engine block/unblock behaviour.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matrix/generators.hpp"
#include "workloads/bfs.hpp"
#include "workloads/fib.hpp"
#include "workloads/matmul.hpp"
#include "workloads/nqueens.hpp"
#include "workloads/pagerank.hpp"

namespace spmrt {
namespace {

using namespace spmrt::workloads;

TEST(Integration, PageRankThenBfsOnSharedGraph)
{
    // Two different kernels over the same uploaded graph, run back to
    // back on one machine with one runtime.
    HostGraph graph = genUniformRandom(300, 6, 42);
    Machine machine(MachineConfig::tiny());
    PageRankData pagerank = pagerankSetup(machine, graph);
    BfsData bfs = bfsSetup(machine, graph, 0);
    WorkStealingRuntime rt(machine, RuntimeConfig::full());

    rt.run([&](TaskContext &tc) { pagerankKernel(tc, pagerank, 2); });
    rt.run([&](TaskContext &tc) { bfsKernel(tc, bfs); });

    EXPECT_TRUE(pagerankVerify(machine, pagerank, graph, 2));
    EXPECT_TRUE(bfsVerify(machine, bfs, graph));
}

TEST(Integration, StaticAndDynamicRuntimesShareAMachine)
{
    HostGraph graph = genUniformRandom(200, 5, 43);
    Machine machine(MachineConfig::tiny());
    PageRankData first = pagerankSetup(machine, graph);
    PageRankData second = pagerankSetup(machine, graph);
    {
        StaticRuntime rt(machine, RuntimeConfig::full());
        rt.run([&](TaskContext &tc) { pagerankKernel(tc, first, 1); });
    }
    {
        WorkStealingRuntime rt(machine, RuntimeConfig::full());
        rt.run([&](TaskContext &tc) { pagerankKernel(tc, second, 1); });
    }
    EXPECT_TRUE(pagerankVerify(machine, first, graph, 1));
    EXPECT_TRUE(pagerankVerify(machine, second, graph, 1));
}

class ActiveCoresTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ActiveCoresTest, CorrectWithRestrictedWorkers)
{
    uint32_t active = GetParam();
    Machine machine(MachineConfig::small()); // 32 cores
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.activeCores = active;
    NQueensData data = nqueensSetup(machine, 6);
    WorkStealingRuntime rt(machine, cfg);
    EXPECT_EQ(rt.activeCores(), active == 0 ? machine.numCores() : active);
    rt.run([&](TaskContext &tc) { nqueensKernel(tc, data); });
    EXPECT_EQ(nqueensResult(machine, data), nqueensReference(6));
}

INSTANTIATE_TEST_SUITE_P(Counts, ActiveCoresTest,
                         ::testing::Values(1, 2, 3, 8, 31, 32, 0));

TEST(Integration, MoreActiveCoresRunFaster)
{
    auto run_with = [](uint32_t active) {
        Machine machine(MachineConfig::small());
        RuntimeConfig cfg = RuntimeConfig::full();
        cfg.activeCores = active;
        WorkStealingRuntime rt(machine, cfg);
        return rt.run([](TaskContext &tc) {
            ForOptions opts;
            opts.grain = 4;
            parallelFor(
                tc, 0, 512,
                [](TaskContext &btc, int64_t) { btc.core().tick(200); },
                opts);
        });
    };
    Cycles one = run_with(1);
    Cycles eight = run_with(8);
    Cycles all = run_with(0);
    EXPECT_LT(eight, one / 4);
    EXPECT_LT(all, eight);
}

TEST(Integration, PlacementVariantsNeverChangeResults)
{
    // fib + nqueens under every placement give identical answers, only
    // different timing.
    for (const RuntimeConfig &cfg :
         {RuntimeConfig::naive(), RuntimeConfig::queueOnly(),
          RuntimeConfig::stackOnly(), RuntimeConfig::full()}) {
        Machine machine(MachineConfig::tiny());
        Addr out = machine.dramAlloc(8, 8);
        WorkStealingRuntime rt(machine, cfg);
        rt.run([&](TaskContext &tc) { fibKernel(tc, 11, out); });
        EXPECT_EQ(machine.mem().peekAs<int64_t>(out), fibReference(11))
            << cfg.name();
    }
}

TEST(Integration, SwOverflowCheckCostsCyclesNotCorrectness)
{
    auto run_fib = [](bool sw_check) {
        Machine machine(MachineConfig::tiny());
        Addr out = machine.dramAlloc(8, 8);
        RuntimeConfig cfg = RuntimeConfig::full();
        cfg.swOverflowCheck = sw_check;
        WorkStealingRuntime rt(machine, cfg);
        Cycles cycles =
            rt.run([&](TaskContext &tc) { fibKernel(tc, 13, out); });
        EXPECT_EQ(machine.mem().peekAs<int64_t>(out), fibReference(13));
        return cycles;
    };
    EXPECT_GT(run_fib(true), run_fib(false))
        << "the 2-instruction software scheme must cost extra cycles";
}

TEST(Integration, PointerTableCostsCyclesNotCorrectness)
{
    // The cost claim is about the steal *path*, so measure that path
    // directly: end-to-end cycles of a work-stealing run are chaotic —
    // a costlier probe throttles steal frequency, which can improve
    // locality and win the lost cycles back at small scales.
    auto probe_cost = [](bool table) {
        Machine machine(MachineConfig::tiny());
        RuntimeConfig cfg = RuntimeConfig::full();
        cfg.queuePointerTable = table;
        WorkStealingRuntime rt(machine, cfg);
        Cycles cost = 0;
        machine.run([&](Core &core) {
            if (core.id() != 1)
                return;
            Cycles before = core.now();
            (void)rt.victimQueueAddrs(core, 0);
            cost = core.now() - before;
        });
        return cost;
    };
    EXPECT_GT(probe_cost(true), probe_cost(false))
        << "the DRAM pointer table must slow the steal path";

    // And the table never changes the computed answer.
    auto run_fib = [](bool table) {
        Machine machine(MachineConfig::tiny());
        Addr out = machine.dramAlloc(8, 8);
        RuntimeConfig cfg = RuntimeConfig::full();
        cfg.queuePointerTable = table;
        WorkStealingRuntime rt(machine, cfg);
        rt.run([&](TaskContext &tc) { fibKernel(tc, 12, out); });
        return machine.mem().peekAs<int64_t>(out);
    };
    EXPECT_EQ(run_fib(true), fibReference(12));
    EXPECT_EQ(run_fib(false), fibReference(12));
}

TEST(Integration, MatMulSpmReserveCoexistsWithRuntime)
{
    // MatMul's 3 KB spm_reserve leaves the runtime ~0.5 KB of stack; a
    // full run must still verify and must overflow some frames to DRAM.
    constexpr uint32_t kN = 32;
    HostDense a = genDenseRandom(kN, kN, 100);
    HostDense b = genDenseRandom(kN, kN, 101);
    Machine machine(MachineConfig::tiny());
    MatMulData data = matmulSetup(machine, kN, 100);
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.userSpmReserve = kMatMulSpmReserve;
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { matmulKernel(tc, data); });
    EXPECT_TRUE(matmulVerify(machine, data, a, b));
}

TEST(Integration, EngineBlockUnblockRoundTrip)
{
    Machine machine(MachineConfig::tiny());
    Engine &engine = machine.engine();
    Cycles woke_at = 0;
    machine.run([&](Core &core) {
        if (core.id() == 1) {
            engine.block(1);
            woke_at = core.now();
        } else if (core.id() == 0) {
            core.tick(500);
            // Yield so core 1 (still at t=0) gets to park first.
            core.idle(1);
            engine.unblock(1, core.now());
        }
    });
    EXPECT_GE(woke_at, 500u);
}

TEST(Integration, DynamicInstructionCountsBehaveLikeTable1)
{
    // The paper's DI observations: work-stealing runs execute more
    // dynamic operations than static runs, and the SPM queue increases
    // DI further (cheaper failed steals -> more of them).
    HostGraph graph = genPowerLaw(512, 8, 0.7, 9);
    auto run_with = [&](bool dynamic, bool spm_queue) {
        Machine machine(MachineConfig::tiny());
        PageRankData data = pagerankSetup(machine, graph);
        RuntimeConfig cfg =
            spm_queue ? RuntimeConfig::full() : RuntimeConfig::stackOnly();
        auto root = [&](TaskContext &tc) {
            pagerankKernel(tc, data, 1);
        };
        if (dynamic) {
            WorkStealingRuntime rt(machine, cfg);
            rt.run(root);
        } else {
            StaticRuntime rt(machine, cfg);
            rt.run(root);
        }
        return machine.totalInstructions();
    };
    uint64_t di_static = run_with(false, true);
    uint64_t di_ws = run_with(true, true);
    EXPECT_GT(di_ws, di_static);
}

class VictimPolicyTest : public ::testing::TestWithParam<VictimPolicy>
{
};

TEST_P(VictimPolicyTest, CorrectAndActuallySteals)
{
    Machine machine(MachineConfig::tiny());
    RuntimeConfig cfg = RuntimeConfig::full();
    cfg.victimPolicy = GetParam();
    NQueensData data = nqueensSetup(machine, 7);
    WorkStealingRuntime rt(machine, cfg);
    rt.run([&](TaskContext &tc) { nqueensKernel(tc, data); });
    EXPECT_EQ(nqueensResult(machine, data), nqueensReference(7));
    EXPECT_GT(machine.totalStat(&RuntimeStats::stealHits), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, VictimPolicyTest,
                         ::testing::Values(VictimPolicy::Random,
                                           VictimPolicy::Nearest,
                                           VictimPolicy::RoundRobin),
                         [](const ::testing::TestParamInfo<VictimPolicy>
                                &info) {
                             switch (info.param) {
                               case VictimPolicy::Random:
                                 return "Random";
                               case VictimPolicy::Nearest:
                                 return "Nearest";
                               default:
                                 return "RoundRobin";
                             }
                         });

TEST(Integration, StressManySmallKernels)
{
    // 20 consecutive tiny kernels: exercises run()/termination reuse.
    Machine machine(MachineConfig::tiny());
    WorkStealingRuntime rt(machine, RuntimeConfig::full());
    Addr counter = machine.dramAlloc(4);
    machine.mem().pokeAs<uint32_t>(counter, 0);
    for (int round = 0; round < 20; ++round) {
        rt.run([&](TaskContext &tc) {
            parallelFor(tc, 0, 16, [&](TaskContext &btc, int64_t) {
                btc.core().amoAdd(counter, 1);
            });
        });
    }
    EXPECT_EQ(machine.mem().peekAs<uint32_t>(counter), 320u);
}

} // namespace
} // namespace spmrt
