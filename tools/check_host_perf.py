#!/usr/bin/env python3
"""Gate host-perf regressions against the committed baseline + trajectory.

Compares a freshly measured BENCH_host_perf.json against
bench/baseline_host_perf.json row by row (matched on workload + cores +
machine geometry; reference rows written before the ``geometry`` field
existed fall back to workload + cores alone), and optionally against
the *latest point* of the committed perf
trajectory (repo-root BENCH_host_perf.json, schema
spmrt-host-perf-trajectory-v1). The gated quantity is the
fast-vs-reference *speedup ratio*, not absolute wall-clock: both
schedulers run on the same machine in the same process, so their ratio
is stable across CI runners while raw milliseconds are not. A row fails
if its measured speedup falls below ``tolerance * reference_speedup``
(default tolerance 0.75, i.e. a >25% regression), or if the bench
itself flagged the row as non-equivalent.

The trajectory file records one point per perf-relevant PR, oldest
first; each point is a full spmrt-host-perf-v1 row set plus a label.
``--append <label>`` adds the measured rows as a new trajectory point
(after the gates pass), creating the file when it does not exist — CI's
bench-smoke uses this to publish the would-be next point as an
artifact, and perf PRs use it to commit the point they land.

Rows may carry a ``series`` tag; rows tagged ``"throughput"`` (the fleet
batch-simulation series, whose ``speedup`` is multi-worker/serial
sims-per-sec scaling and varies with host core count) are gated with the
separate, laxer ``--throughput-tolerance``, and rows tagged
``"parallel"`` (the sharded-engine series, whose ``speedup`` is
sequential/parallel wall-clock and depends entirely on free host cores)
with ``--parallel-tolerance``. For both, the ``equivalent`` flag — the
byte-identity contract — remains gated strictly regardless of tolerance.
``--require-series NAME`` (repeatable) fails when the measured file
carries no row of that series — CI uses it to ensure neither the fleet
bench nor the parallel-engine legs silently drop out of the measurement.

Parallel rows carry the measuring machine's ``host_cores``: a shard
thread can only beat the sequential engine when a real host core backs
it, so the speedup floor applies to a parallel row only when its
``host_cores`` exceeds its ``shards`` (on an undersized host only the
equivalence flag is gated — a wall ratio there measures the OS
scheduler, not the engine). ``--require-parallel-speedup`` additionally
demands that at least one eligible multi-shard parallel row actually
clears 1.0x — the windowed engine's reason to exist — and is skipped
with a notice when the host has no eligible rows to offer.

Usage:
    check_host_perf.py <measured.json> <baseline.json>
        [--trajectory BENCH_host_perf.json] [--append <label>]
        [--tolerance 0.75] [--throughput-tolerance 0.5]
        [--require-series NAME]
"""

import argparse
import json
import os
import sys

TRAJECTORY_SCHEMA = "spmrt-host-perf-trajectory-v1"
POINT_SCHEMA = "spmrt-host-perf-v1"


def row_key(r):
    """Identity of one measurement row. The machine geometry string is
    part of it: the same workload at the same simulated core count on a
    different machine shape is a different measurement. Rows written
    before the geometry field existed key under geometry=None."""
    return (r["workload"], r["cores"], r.get("geometry"))


def key_rows(rows):
    return {row_key(r): r for r in rows}


def find_row(measured, key):
    """Look up a measured row for a reference key. A legacy reference
    row (no geometry) matches any measured geometry for its workload and
    core count, so old baselines keep gating new measurements."""
    row = measured.get(key)
    if row is not None:
        return row
    if key[2] is None:
        for k, r in measured.items():
            if k[0] == key[0] and k[1] == key[1]:
                return r
    return None


def load_json(path, what):
    """Load a JSON document with actionable errors, never a traceback."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"{path}: {what} file not found — run the host_perf "
                 "bench first (build/bench/host_perf) or pass the right "
                 "path")
    except IsADirectoryError:
        sys.exit(f"{path}: is a directory, expected a {what} JSON file")
    except json.JSONDecodeError as err:
        sys.exit(f"{path}: not valid JSON ({err}) — the {what} file is "
                 "truncated or was not written by the host_perf bench")


def load_measurement(path):
    """Load a single spmrt-host-perf-v1 measurement."""
    doc = load_json(path, "measurement")
    if doc.get("schema") != POINT_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r} "
                 f"(expected {POINT_SCHEMA!r})")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"{path}: measurement has no rows — the bench produced "
                 "an empty result (check its own output for failures)")
    for row in rows:
        if "workload" not in row or "cores" not in row:
            sys.exit(f"{path}: row missing workload/cores: {row!r}")
        if "speedup" not in row:
            sys.exit(f"{path}: row {row['workload']}/{row['cores']} has "
                     "no 'speedup' field")
    return doc


def load_trajectory(path):
    """Load a trajectory document, validating schema and point shape."""
    doc = load_json(path, "trajectory")
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r} "
                 f"(expected {TRAJECTORY_SCHEMA!r})")
    points = doc.get("points", [])
    if not points:
        sys.exit(f"{path}: trajectory has no points — either restore the "
                 "committed file or append a first point with --append")
    for point in points:
        if "label" not in point or "rows" not in point:
            sys.exit(f"{path}: trajectory point missing label/rows")
        if not point["rows"]:
            sys.exit(f"{path}: trajectory point {point['label']!r} has "
                     "no rows")
    return doc


def row_tolerance(base, tolerance, throughput_tolerance,
                  parallel_tolerance):
    if base.get("series") == "throughput":
        return throughput_tolerance
    if base.get("series") == "parallel":
        return parallel_tolerance
    return tolerance


def parallel_row_eligible(row):
    """True when a parallel row's wall ratio is meaningful: each shard
    thread backed by a real host core. Rows from old measurements with
    no host_cores field stay eligible (the historical behaviour)."""
    host_cores = row.get("host_cores")
    if host_cores is None:
        return True
    return host_cores > row.get("shards", 1)


def check(measured, reference, reference_name, tolerance,
          throughput_tolerance, parallel_tolerance):
    """Gate measured rows against one reference row set."""
    failures = []
    print(f"vs {reference_name}:")
    print(f"  {'workload':<10} {'cores':>6} {'speedup':>9} {'expected':>9} "
          f"{'floor':>7}  status")
    for key, base in sorted(reference.items(),
                            key=lambda kv: (kv[0][0], kv[0][1],
                                            kv[0][2] or "")):
        row = find_row(measured, key)
        if row is None:
            failures.append(f"{key}: missing from measured results")
            continue
        waived = (base.get("series") == "parallel" and
                  not parallel_row_eligible(row))
        floor = row_tolerance(base, tolerance, throughput_tolerance,
                              parallel_tolerance) * base["speedup"]
        speedup_ok = waived or row["speedup"] >= floor
        ok = speedup_ok and row.get("equivalent", False)
        status = "ok" if ok else "FAIL"
        if waived and row.get("equivalent", False):
            status = "ok (speedup waived: host_cores <= shards)"
        print(f"  {key[0]:<10} {key[1]:>6} {row['speedup']:>8.2f}x "
              f"{base['speedup']:>8.2f}x {floor:>6.2f}x  {status}")
        if not row.get("equivalent", False):
            failures.append(f"{key}: results diverged (equivalent=false)")
        elif not speedup_ok:
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x below floor "
                f"{floor:.2f}x ({reference_name} {base['speedup']:.2f}x)")
    print()
    return failures


def check_parallel_speedup(rows, source):
    """--require-parallel-speedup: at least one eligible multi-shard
    parallel row must beat the sequential engine outright."""
    eligible = [r for r in rows
                if r.get("series") == "parallel" and r.get("shards", 1) > 1
                and parallel_row_eligible(r)]
    if not eligible:
        print("parallel-speedup gate skipped: no parallel row has "
              "host_cores > shards (undersized host)")
        return []
    best = max(eligible, key=lambda r: r["speedup"])
    print(f"parallel-speedup gate: best eligible row "
          f"{best['workload']}/{best.get('shards')} shards at "
          f"{best['speedup']:.2f}x")
    if best["speedup"] > 1.0:
        return []
    return [f"{source}: no eligible parallel row beats the sequential "
            f"engine (best {best['workload']} at {best['speedup']:.2f}x "
            f"with {best.get('shards')} shards on "
            f"{best.get('host_cores')} host cores)"]


def append_point(trajectory_path, measured_doc, label):
    """Append the measured rows to the trajectory (creating it if new)."""
    if os.path.exists(trajectory_path):
        doc = load_trajectory(trajectory_path)
    else:
        doc = {"schema": TRAJECTORY_SCHEMA, "points": []}
    doc["points"].append({
        "label": label,
        "quick": measured_doc.get("quick", False),
        "rows": measured_doc["rows"],
    })
    with open(trajectory_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"appended point {label!r} to {trajectory_path} "
          f"({len(doc['points'])} points)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--trajectory",
                        help="perf-trajectory JSON; gate against its "
                             "latest point as well as the baseline")
    parser.add_argument("--append", metavar="LABEL",
                        help="after the gates pass, append the measured "
                             "rows to --trajectory under this label")
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="minimum fraction of the reference speedup "
                             "that must be retained (default 0.75)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.5,
                        help="tolerance applied to rows tagged "
                             "series=throughput, whose scaling depends on "
                             "host core count (default 0.5)")
    parser.add_argument("--parallel-tolerance", type=float, default=0.25,
                        help="tolerance applied to rows tagged "
                             "series=parallel, whose wall ratio depends "
                             "on free host cores; equivalence is still "
                             "gated strictly (default 0.25)")
    parser.add_argument("--require-series", metavar="NAME",
                        action="append", default=[],
                        help="fail unless the measured file contains at "
                             "least one row with this series tag "
                             "(repeatable)")
    parser.add_argument("--require-parallel-speedup", action="store_true",
                        help="fail unless at least one parallel row with "
                             "shards > 1 and host_cores > shards clears a "
                             "1.0x wall ratio (skipped when no row is "
                             "eligible)")
    args = parser.parse_args()
    if args.append and not args.trajectory:
        parser.error("--append requires --trajectory")

    measured_doc = load_measurement(args.measured)
    measured = key_rows(measured_doc["rows"])
    baseline = key_rows(load_measurement(args.baseline)["rows"])

    failures = []
    for series in args.require_series:
        tagged = [r for r in measured_doc["rows"]
                  if r.get("series") == series]
        if not tagged:
            failures.append(
                f"{args.measured}: no row tagged series="
                f"{series!r} — the bench that produces that "
                "series did not run (was it filtered out?)")

    if args.require_parallel_speedup:
        failures += check_parallel_speedup(measured_doc["rows"],
                                           args.measured)

    failures += check(measured, baseline, args.baseline, args.tolerance,
                      args.throughput_tolerance, args.parallel_tolerance)
    if args.trajectory:
        if not os.path.exists(args.trajectory):
            print(f"{args.trajectory}: not found, skipping trajectory gate")
        else:
            trajectory = load_trajectory(args.trajectory)
            latest = trajectory["points"][-1]
            failures += check(
                measured, key_rows(latest["rows"]),
                f"{args.trajectory}[{latest['label']}]", args.tolerance,
                args.throughput_tolerance, args.parallel_tolerance)

    if failures:
        print("host-perf regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("host-perf regression check passed")
    if args.append:
        append_point(args.trajectory, measured_doc, args.append)
    return 0


if __name__ == "__main__":
    sys.exit(main())
