#!/usr/bin/env python3
"""Gate host-perf regressions against the committed baseline + trajectory.

Compares a freshly measured BENCH_host_perf.json against
bench/baseline_host_perf.json row by row (matched on workload + cores),
and optionally against the *latest point* of the committed perf
trajectory (repo-root BENCH_host_perf.json, schema
spmrt-host-perf-trajectory-v1). The gated quantity is the
fast-vs-reference *speedup ratio*, not absolute wall-clock: both
schedulers run on the same machine in the same process, so their ratio
is stable across CI runners while raw milliseconds are not. A row fails
if its measured speedup falls below ``tolerance * reference_speedup``
(default tolerance 0.75, i.e. a >25% regression), or if the bench
itself flagged the row as non-equivalent.

The trajectory file records one point per perf-relevant PR, oldest
first; each point is a full spmrt-host-perf-v1 row set plus a label.
``--append <label>`` adds the measured rows as a new trajectory point
(after the gates pass), creating the file when it does not exist — CI's
bench-smoke uses this to publish the would-be next point as an
artifact, and perf PRs use it to commit the point they land.

Usage:
    check_host_perf.py <measured.json> <baseline.json>
        [--trajectory BENCH_host_perf.json] [--append <label>]
        [--tolerance 0.75]
"""

import argparse
import json
import sys

TRAJECTORY_SCHEMA = "spmrt-host-perf-trajectory-v1"
POINT_SCHEMA = "spmrt-host-perf-v1"


def key_rows(rows):
    return {(r["workload"], r["cores"]): r for r in rows}


def load_measurement(path):
    """Load a single spmrt-host-perf-v1 measurement."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != POINT_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def load_trajectory(path):
    """Load a trajectory document, validating schema and point shape."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    points = doc.get("points", [])
    if not points:
        sys.exit(f"{path}: trajectory has no points")
    for point in points:
        if "label" not in point or "rows" not in point:
            sys.exit(f"{path}: trajectory point missing label/rows")
    return doc


def check(measured, reference, reference_name, tolerance):
    """Gate measured rows against one reference row set."""
    failures = []
    print(f"vs {reference_name}:")
    print(f"  {'workload':<10} {'cores':>6} {'speedup':>9} {'expected':>9} "
          f"{'floor':>7}  status")
    for key, base in sorted(reference.items()):
        row = measured.get(key)
        if row is None:
            failures.append(f"{key}: missing from measured results")
            continue
        floor = tolerance * base["speedup"]
        ok = row["speedup"] >= floor and row.get("equivalent", False)
        status = "ok" if ok else "FAIL"
        print(f"  {key[0]:<10} {key[1]:>6} {row['speedup']:>8.2f}x "
              f"{base['speedup']:>8.2f}x {floor:>6.2f}x  {status}")
        if not row.get("equivalent", False):
            failures.append(f"{key}: schedulers diverged (equivalent=false)")
        elif row["speedup"] < floor:
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x below floor "
                f"{floor:.2f}x ({reference_name} {base['speedup']:.2f}x)")
    print()
    return failures


def append_point(trajectory_path, measured_doc, label):
    """Append the measured rows to the trajectory (creating it if new)."""
    try:
        doc = load_trajectory(trajectory_path)
    except FileNotFoundError:
        doc = {"schema": TRAJECTORY_SCHEMA, "points": []}
    doc["points"].append({
        "label": label,
        "quick": measured_doc.get("quick", False),
        "rows": measured_doc["rows"],
    })
    with open(trajectory_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"appended point {label!r} to {trajectory_path} "
          f"({len(doc['points'])} points)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--trajectory",
                        help="perf-trajectory JSON; gate against its "
                             "latest point as well as the baseline")
    parser.add_argument("--append", metavar="LABEL",
                        help="after the gates pass, append the measured "
                             "rows to --trajectory under this label")
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="minimum fraction of the reference speedup "
                             "that must be retained (default 0.75)")
    args = parser.parse_args()
    if args.append and not args.trajectory:
        parser.error("--append requires --trajectory")

    measured_doc = load_measurement(args.measured)
    measured = key_rows(measured_doc["rows"])
    baseline = key_rows(load_measurement(args.baseline)["rows"])

    failures = check(measured, baseline, args.baseline, args.tolerance)
    if args.trajectory:
        try:
            trajectory = load_trajectory(args.trajectory)
        except FileNotFoundError:
            trajectory = None
            print(f"{args.trajectory}: not found, skipping trajectory gate")
        if trajectory is not None:
            latest = trajectory["points"][-1]
            failures += check(
                measured, key_rows(latest["rows"]),
                f"{args.trajectory}[{latest['label']}]", args.tolerance)

    if failures:
        print("host-perf regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("host-perf regression check passed")
    if args.append:
        append_point(args.trajectory, measured_doc, args.append)
    return 0


if __name__ == "__main__":
    sys.exit(main())
