#!/usr/bin/env python3
"""Gate host-perf regressions against the committed baseline + trajectory.

Compares a freshly measured BENCH_host_perf.json against
bench/baseline_host_perf.json row by row (matched on workload + cores +
machine geometry; reference rows written before the ``geometry`` field
existed fall back to workload + cores alone), and optionally against
the *latest point* of the committed perf
trajectory (repo-root BENCH_host_perf.json, schema
spmrt-host-perf-trajectory-v1). The gated quantity is the
fast-vs-reference *speedup ratio*, not absolute wall-clock: both
schedulers run on the same machine in the same process, so their ratio
is stable across CI runners while raw milliseconds are not. A row fails
if its measured speedup falls below ``tolerance * reference_speedup``
(default tolerance 0.75, i.e. a >25% regression), or if the bench
itself flagged the row as non-equivalent.

The trajectory file records one point per perf-relevant PR, oldest
first; each point is a full spmrt-host-perf-v1 row set plus a label.
``--append <label>`` adds the measured rows as a new trajectory point
(after the gates pass), creating the file when it does not exist — CI's
bench-smoke uses this to publish the would-be next point as an
artifact, and perf PRs use it to commit the point they land.

Rows may carry a ``series`` tag; rows tagged ``"throughput"`` (the fleet
batch-simulation series, whose ``speedup`` is multi-worker/serial
sims-per-sec scaling and varies with host core count) are gated with the
separate, laxer ``--throughput-tolerance``, and rows tagged
``"parallel"`` (the sharded-engine series, whose ``speedup`` is
sequential/parallel wall-clock and depends entirely on free host cores)
with ``--parallel-tolerance``. For both, the ``equivalent`` flag — the
byte-identity contract — remains gated strictly regardless of tolerance.
``--require-series NAME`` (repeatable) fails when the measured file
carries no row of that series — CI uses it to ensure neither the fleet
bench nor the parallel-engine legs silently drop out of the measurement.

Parallel rows carry the measuring machine's ``host_cores``: a shard
thread can only beat the sequential engine when a real host core backs
it, so the speedup floor applies to a parallel row only when its
``host_cores`` exceeds its ``shards`` (on an undersized host only the
equivalence flag is gated — a wall ratio there measures the OS
scheduler, not the engine). ``--require-parallel-speedup`` additionally
demands that at least one eligible multi-shard parallel row actually
clears 1.0x — the windowed engine's reason to exist — and is skipped
with a notice when the host has no eligible rows to offer.

Usage:
    check_host_perf.py <measured.json> <baseline.json>
        [--trajectory BENCH_host_perf.json] [--append <label>]
        [--tolerance 0.75] [--throughput-tolerance 0.5]
        [--require-series NAME]
"""

import argparse
import json
import os
import sys

TRAJECTORY_SCHEMA = "spmrt-host-perf-trajectory-v1"
POINT_SCHEMA = "spmrt-host-perf-v1"


def row_key(r):
    """Identity of one measurement row. The machine geometry string is
    part of it: the same workload at the same simulated core count on a
    different machine shape is a different measurement. Rows written
    before the geometry field existed key under geometry=None."""
    return (r["workload"], r["cores"], r.get("geometry"))


def key_rows(rows):
    return {row_key(r): r for r in rows}


def find_row(measured, key):
    """Look up a measured row for a reference key. A legacy reference
    row (no geometry) matches any measured geometry for its workload and
    core count, so old baselines keep gating new measurements."""
    row = measured.get(key)
    if row is not None:
        return row
    if key[2] is None:
        for k, r in measured.items():
            if k[0] == key[0] and k[1] == key[1]:
                return r
    return None


def load_json(path, what):
    """Load a JSON document with actionable errors, never a traceback."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"{path}: {what} file not found — run the host_perf "
                 "bench first (build/bench/host_perf) or pass the right "
                 "path")
    except IsADirectoryError:
        sys.exit(f"{path}: is a directory, expected a {what} JSON file")
    except json.JSONDecodeError as err:
        sys.exit(f"{path}: not valid JSON ({err}) — the {what} file is "
                 "truncated or was not written by the host_perf bench")


def load_measurement(path):
    """Load a single spmrt-host-perf-v1 measurement."""
    doc = load_json(path, "measurement")
    if doc.get("schema") != POINT_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r} "
                 f"(expected {POINT_SCHEMA!r})")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"{path}: measurement has no rows — the bench produced "
                 "an empty result (check its own output for failures)")
    for row in rows:
        if "workload" not in row or "cores" not in row:
            sys.exit(f"{path}: row missing workload/cores: {row!r}")
        if "speedup" not in row:
            sys.exit(f"{path}: row {row['workload']}/{row['cores']} has "
                     "no 'speedup' field")
    return doc


def load_trajectory(path):
    """Load a trajectory document, validating schema and point shape."""
    doc = load_json(path, "trajectory")
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r} "
                 f"(expected {TRAJECTORY_SCHEMA!r})")
    points = doc.get("points", [])
    if not points:
        sys.exit(f"{path}: trajectory has no points — either restore the "
                 "committed file or append a first point with --append")
    for point in points:
        if "label" not in point or "rows" not in point:
            sys.exit(f"{path}: trajectory point missing label/rows")
        if not point["rows"]:
            sys.exit(f"{path}: trajectory point {point['label']!r} has "
                     "no rows")
    return doc


def describe_row(key, base=None, row=None):
    """Human-readable identity of a failing row: which series and leg,
    not just the key tuple. ``workload/cores`` plus the series tag and
    shard count when present, e.g. ``fib-tiny/128 (series=parallel,
    shards=8)``."""
    name = f"{key[0]}/{key[1]}"
    tags = []
    source = base or row or {}
    series = source.get("series") or (row or {}).get("series")
    if series:
        tags.append(f"series={series}")
    shards = (row or {}).get("shards", source.get("shards"))
    if shards is not None:
        tags.append(f"shards={shards}")
    if key[2]:
        tags.append(f"geometry={key[2]}")
    return name + (f" ({', '.join(tags)})" if tags else "")


def row_tolerance(base, tolerance, throughput_tolerance,
                  parallel_tolerance):
    if base.get("series") == "throughput":
        return throughput_tolerance
    if base.get("series") == "parallel":
        return parallel_tolerance
    return tolerance


def parallel_row_eligible(row):
    """True when a parallel row's wall ratio is meaningful: each shard
    thread backed by a real host core. Rows from old measurements with
    no host_cores field stay eligible (the historical behaviour)."""
    host_cores = row.get("host_cores")
    if host_cores is None:
        return True
    return host_cores > row.get("shards", 1)


def check(measured, reference, reference_name, tolerance,
          throughput_tolerance, parallel_tolerance):
    """Gate measured rows against one reference row set."""
    failures = []
    print(f"vs {reference_name}:")
    print(f"  {'workload':<10} {'cores':>6} {'speedup':>9} {'expected':>9} "
          f"{'floor':>7}  status")
    for key, base in sorted(reference.items(),
                            key=lambda kv: (kv[0][0], kv[0][1],
                                            kv[0][2] or "")):
        row = find_row(measured, key)
        if row is None:
            failures.append(f"{describe_row(key, base)}: missing from "
                            "measured results — the leg did not run or "
                            "was filtered out")
            continue
        waived = (base.get("series") == "parallel" and
                  not parallel_row_eligible(row))
        floor = row_tolerance(base, tolerance, throughput_tolerance,
                              parallel_tolerance) * base["speedup"]
        speedup_ok = waived or row["speedup"] >= floor
        ok = speedup_ok and row.get("equivalent", False)
        status = "ok" if ok else "FAIL"
        if waived and row.get("equivalent", False):
            status = "ok (speedup waived: host_cores <= shards)"
        print(f"  {key[0]:<10} {key[1]:>6} {row['speedup']:>8.2f}x "
              f"{base['speedup']:>8.2f}x {floor:>6.2f}x  {status}")
        if not row.get("equivalent", False):
            failures.append(f"{describe_row(key, base, row)}: results "
                            "diverged (equivalent=false) — the leg's "
                            "byte-identity contract broke")
        elif not speedup_ok:
            failures.append(
                f"{describe_row(key, base, row)}: speedup "
                f"{row['speedup']:.2f}x below floor {floor:.2f}x "
                f"({reference_name} recorded {base['speedup']:.2f}x)")
    print()
    return failures


def check_parallel_speedup(rows, source):
    """--require-parallel-speedup: at least one eligible multi-shard
    parallel row must beat the sequential engine outright."""
    eligible = [r for r in rows
                if r.get("series") == "parallel" and r.get("shards", 1) > 1
                and parallel_row_eligible(r)]
    if not eligible:
        print("parallel-speedup gate skipped: no parallel row has "
              "host_cores > shards (undersized host)")
        return []
    best = max(eligible, key=lambda r: r["speedup"])
    print(f"parallel-speedup gate: best eligible row "
          f"{best['workload']}/{best.get('shards')} shards at "
          f"{best['speedup']:.2f}x")
    if best["speedup"] > 1.0:
        return []
    return [f"{source}: no eligible parallel row beats the sequential "
            f"engine (best {best['workload']} at {best['speedup']:.2f}x "
            f"with {best.get('shards')} shards on "
            f"{best.get('host_cores')} host cores)"]


def append_point(trajectory_path, measured_doc, label):
    """Append the measured rows to the trajectory (creating it if new)."""
    if os.path.exists(trajectory_path):
        doc = load_trajectory(trajectory_path)
    else:
        doc = {"schema": TRAJECTORY_SCHEMA, "points": []}
    doc["points"].append({
        "label": label,
        "quick": measured_doc.get("quick", False),
        "rows": measured_doc["rows"],
    })
    with open(trajectory_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"appended point {label!r} to {trajectory_path} "
          f"({len(doc['points'])} points)")


def self_test():
    """Unit-style checks of the gating logic itself (run from ctest).
    Synthetic rows, no files: every branch the CI gate depends on —
    keying, legacy-geometry fallback, per-series tolerances, the
    host_cores waiver, the parallel-speedup gate, and the failure
    messages naming the series and leg."""
    def expect(cond, what):
        if not cond:
            sys.exit(f"check_host_perf.py --self-test FAILED: {what}")

    # Row keying and the legacy-geometry fallback.
    new = {"workload": "fib", "cores": 128, "geometry": "16x8",
           "speedup": 2.0, "equivalent": True}
    expect(row_key(new) == ("fib", 128, "16x8"), "row_key with geometry")
    measured = key_rows([new])
    expect(find_row(measured, ("fib", 128, None)) is new,
           "legacy baseline row must match any measured geometry")
    expect(find_row(measured, ("fib", 64, None)) is None,
           "legacy fallback must still match workload and cores")

    # Per-series tolerances.
    expect(row_tolerance({}, 0.75, 0.5, 0.25) == 0.75, "main tolerance")
    expect(row_tolerance({"series": "throughput"}, 0.75, 0.5, 0.25) == 0.5,
           "throughput tolerance")
    expect(row_tolerance({"series": "parallel"}, 0.75, 0.5, 0.25) == 0.25,
           "parallel tolerance")

    # The host_cores waiver.
    expect(parallel_row_eligible({"host_cores": 8, "shards": 4}),
           "8 host cores back 4 shards")
    expect(not parallel_row_eligible({"host_cores": 4, "shards": 4}),
           "oversubscribed host must be waived")
    expect(parallel_row_eligible({}), "legacy rows stay eligible")

    # The parallel-speedup gate.
    rows = [{"workload": "fib", "series": "parallel", "shards": 4,
             "host_cores": 16, "speedup": 1.4, "equivalent": True}]
    expect(check_parallel_speedup(rows, "t") == [],
           "a 1.4x eligible row passes the speedup gate")
    rows[0]["speedup"] = 0.9
    expect(len(check_parallel_speedup(rows, "t")) == 1,
           "a 0.9x best row fails the speedup gate")
    rows[0]["host_cores"] = 4
    expect(check_parallel_speedup(rows, "t") == [],
           "an undersized host skips the speedup gate")

    # A failing row's message must name its series and leg.
    base = {"workload": "fib-tiny", "cores": 128, "geometry": "16x8",
            "series": "parallel", "speedup": 1.2, "equivalent": True}
    bad = dict(base, speedup=0.1, shards=8, host_cores=64,
               equivalent=False)
    failures = check(key_rows([bad]), key_rows([base]), "baseline",
                     0.75, 0.5, 0.25)
    expect(len(failures) == 1, "one divergent row, one failure")
    expect("fib-tiny/128" in failures[0] and
           "series=parallel" in failures[0] and
           "shards=8" in failures[0],
           f"failure must name series and leg, got: {failures[0]}")

    # A missing leg names the series it came from.
    failures = check({}, key_rows([base]), "baseline", 0.75, 0.5, 0.25)
    expect(len(failures) == 1 and "series=parallel" in failures[0] and
           "missing" in failures[0],
           f"missing-leg failure must name the series: {failures}")

    print("check_host_perf.py --self-test passed")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--trajectory",
                        help="perf-trajectory JSON; gate against its "
                             "latest point as well as the baseline")
    parser.add_argument("--append", metavar="LABEL",
                        help="after the gates pass, append the measured "
                             "rows to --trajectory under this label")
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="minimum fraction of the reference speedup "
                             "that must be retained (default 0.75)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.5,
                        help="tolerance applied to rows tagged "
                             "series=throughput, whose scaling depends on "
                             "host core count (default 0.5)")
    parser.add_argument("--parallel-tolerance", type=float, default=0.25,
                        help="tolerance applied to rows tagged "
                             "series=parallel, whose wall ratio depends "
                             "on free host cores; equivalence is still "
                             "gated strictly (default 0.25)")
    parser.add_argument("--require-series", metavar="NAME",
                        action="append", default=[],
                        help="fail unless the measured file contains at "
                             "least one row with this series tag "
                             "(repeatable)")
    parser.add_argument("--require-parallel-speedup", action="store_true",
                        help="fail unless at least one parallel row with "
                             "shards > 1 and host_cores > shards clears a "
                             "1.0x wall ratio (skipped when no row is "
                             "eligible)")
    args = parser.parse_args()
    if args.append and not args.trajectory:
        parser.error("--append requires --trajectory")

    measured_doc = load_measurement(args.measured)
    measured = key_rows(measured_doc["rows"])
    baseline = key_rows(load_measurement(args.baseline)["rows"])

    failures = []
    for series in args.require_series:
        tagged = [r for r in measured_doc["rows"]
                  if r.get("series") == series]
        if not tagged:
            failures.append(
                f"{args.measured}: no row tagged series="
                f"{series!r} — the bench that produces that "
                "series did not run (was it filtered out?)")

    if args.require_parallel_speedup:
        failures += check_parallel_speedup(measured_doc["rows"],
                                           args.measured)

    failures += check(measured, baseline, args.baseline, args.tolerance,
                      args.throughput_tolerance, args.parallel_tolerance)
    if args.trajectory:
        if not os.path.exists(args.trajectory):
            print(f"{args.trajectory}: not found, skipping trajectory gate")
        else:
            trajectory = load_trajectory(args.trajectory)
            latest = trajectory["points"][-1]
            failures += check(
                measured, key_rows(latest["rows"]),
                f"{args.trajectory}[{latest['label']}]", args.tolerance,
                args.throughput_tolerance, args.parallel_tolerance)

    if failures:
        print("host-perf regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("host-perf regression check passed")
    if args.append:
        append_point(args.trajectory, measured_doc, args.append)
    return 0


if __name__ == "__main__":
    sys.exit(main())
