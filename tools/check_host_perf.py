#!/usr/bin/env python3
"""Gate host-perf regressions against the committed baseline.

Compares a freshly measured BENCH_host_perf.json against
bench/baseline_host_perf.json row by row (matched on workload + cores).
The gated quantity is the fast-vs-reference *speedup ratio*, not absolute
wall-clock: both schedulers run on the same machine in the same process,
so their ratio is stable across CI runners while raw milliseconds are
not. A row fails if its measured speedup falls below
``tolerance * baseline_speedup`` (default tolerance 0.75, i.e. a >25%
regression), or if the bench itself flagged the row as non-equivalent.

Usage:
    check_host_perf.py <measured.json> <baseline.json> [--tolerance 0.75]
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "spmrt-host-perf-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {(r["workload"], r["cores"]): r for r in doc["rows"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="minimum fraction of the baseline speedup "
                             "that must be retained (default 0.75)")
    args = parser.parse_args()

    measured = load_rows(args.measured)
    baseline = load_rows(args.baseline)

    failures = []
    print(f"{'workload':<10} {'cores':>6} {'speedup':>9} {'baseline':>9} "
          f"{'floor':>7}  status")
    for key, base in sorted(baseline.items()):
        row = measured.get(key)
        if row is None:
            failures.append(f"{key}: missing from measured results")
            continue
        floor = args.tolerance * base["speedup"]
        ok = row["speedup"] >= floor and row.get("equivalent", False)
        status = "ok" if ok else "FAIL"
        print(f"{key[0]:<10} {key[1]:>6} {row['speedup']:>8.2f}x "
              f"{base['speedup']:>8.2f}x {floor:>6.2f}x  {status}")
        if not row.get("equivalent", False):
            failures.append(f"{key}: schedulers diverged (equivalent=false)")
        elif row["speedup"] < floor:
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x below floor "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x)")

    if failures:
        print("\nhost-perf regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nhost-perf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
