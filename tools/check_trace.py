#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the telemetry
subsystem (obs::Tracer::writeChromeJson), and optionally a heatmap CSV.

Checks, per the schema contract in DESIGN.md Sec. 11:

* the document is an object with a ``traceEvents`` list and an
  ``otherData.schema`` of ``spmrt-trace-v1``;
* every event carries ``name``/``ph``/``ts``/``pid``/``tid`` with a
  non-negative integer timestamp and a known phase (B, E, i, X, M);
* per (pid, tid) track, timestamps of B/E/i events are monotonically
  non-decreasing in file order (each simulated core's clock only moves
  forward; X fault windows are emitted at plan-install time and M
  metadata is timeless, so both are exempt);
* B/E events balance and nest with matching names per track;
* the trace contains at least one event (an empty trace means the
  telemetry hooks were not armed).

With ``--heatmap`` (a CSV from MeshNoc::linkHeatmap) plus ``--mesh-cols``
and ``--mesh-rows``, additionally checks that every link's coordinates
are inside the mesh and its direction index below 8
(E/W/N/S/RE/RW/RN/RS).

Usage:
    check_trace.py <trace.json> [--heatmap <links.csv>
                                 --mesh-cols 16 --mesh-rows 8]
"""

import argparse
import csv
import json
import sys

KNOWN_PHASES = {"B", "E", "i", "X", "M"}
NUM_LINK_DIRS = 8


def fail(message):
    sys.exit(f"FAIL: {message}")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: no traceEvents array")
    other = doc.get("otherData", {})
    if other.get("schema") != "spmrt-trace-v1":
        fail(f"{path}: unexpected otherData.schema "
             f"{other.get('schema')!r}")

    events = doc["traceEvents"]
    last_ts = {}     # (pid, tid) -> last B/E/i timestamp seen
    open_spans = {}  # (pid, tid) -> stack of open begin names
    counted = 0
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event {index} missing {key!r}: {event}")
        phase = event["ph"]
        if phase not in KNOWN_PHASES:
            fail(f"{path}: event {index} has unknown phase {phase!r}")
        if phase == "M":
            continue  # metadata records are timeless
        if "ts" not in event:
            fail(f"{path}: event {index} missing 'ts': {event}")
        ts = event["ts"]
        if not isinstance(ts, int) or ts < 0:
            fail(f"{path}: event {index} has bad timestamp {ts!r}")
        counted += 1
        if phase == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                fail(f"{path}: event {index} (X) has bad dur "
                     f"{event.get('dur')!r}")
            continue
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, 0):
            fail(f"{path}: event {index} ({event['name']!r}) goes "
                 f"backwards on track {track}: {ts} < {last_ts[track]}")
        last_ts[track] = ts
        if phase == "B":
            open_spans.setdefault(track, []).append(event["name"])
        elif phase == "E":
            stack = open_spans.get(track, [])
            if not stack:
                fail(f"{path}: event {index} ends {event['name']!r} on "
                     f"track {track} with no open begin")
            if stack[-1] != event["name"]:
                fail(f"{path}: event {index} ends {event['name']!r} but "
                     f"{stack[-1]!r} is open on track {track}")
            stack.pop()
    for track, stack in open_spans.items():
        if stack:
            fail(f"{path}: track {track} left {stack!r} open")
    if counted == 0:
        fail(f"{path}: trace has no events — telemetry was not armed?")
    declared = other.get("events")
    if declared is not None and declared != counted:
        fail(f"{path}: otherData.events={declared} but {counted} "
             f"non-metadata events present")
    dropped = other.get("dropped", 0)
    print(f"OK: {path}: {counted} events on {len(last_ts)} tracks"
          f" ({dropped} dropped)")


def check_heatmap(path, mesh_cols, mesh_rows):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        fail(f"{path}: empty heatmap")
    for field in ("x", "y", "dir"):
        if field not in rows[0]:
            fail(f"{path}: missing column {field!r}")
    for line, row in enumerate(rows, start=2):
        x, y, direction = int(row["x"]), int(row["y"]), int(row["dir"])
        if x >= mesh_cols or y >= mesh_rows:
            fail(f"{path}:{line}: link at ({x},{y}) outside the "
                 f"{mesh_cols}x{mesh_rows} mesh")
        if direction >= NUM_LINK_DIRS:
            fail(f"{path}:{line}: direction {direction} out of range")
    expected = mesh_cols * mesh_rows * NUM_LINK_DIRS
    if len(rows) != expected:
        fail(f"{path}: {len(rows)} links, expected {expected} "
             f"({mesh_cols}x{mesh_rows}x{NUM_LINK_DIRS})")
    print(f"OK: {path}: {len(rows)} links within the "
          f"{mesh_cols}x{mesh_rows} mesh")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--heatmap", help="NoC link heatmap CSV")
    parser.add_argument("--mesh-cols", type=int, default=16)
    parser.add_argument("--mesh-rows", type=int, default=8)
    args = parser.parse_args()

    check_trace(args.trace)
    if args.heatmap:
        check_heatmap(args.heatmap, args.mesh_cols, args.mesh_rows)


if __name__ == "__main__":
    main()
